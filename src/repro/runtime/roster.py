"""Decentralized cluster roster: ring-ordered, versioned, gossip-merged.

The sharded live runtime has no single registration point.  Every
:class:`~repro.runtime.agent.RosterAgent` (one per shard process) holds
a :class:`Roster` replica and converges it with its peers through
deltas broadcast on membership changes plus periodic anti-entropy pages
piggybacked on the existing ``gossip_summaries`` message kind — the
Distributed-Slicing idiom of roster/ordering maintenance without a
leader.

Entries are versioned per member: whichever agent performs a membership
change (join, leave, re-join after a crash) bumps the entry's version,
and replicas merge by last-writer-wins on ``(version, status)`` with
departures winning ties — so a tombstone is never resurrected by a
stale ``up`` copy, while a genuine re-join (version bumped above the
tombstone) always lands.

Members are ordered on a hash ring (:func:`ring_position`, the
Socket-Project DHT idiom): id assignment is stable across processes and
restarts, ``successor`` walks the ring, and the election coordinator is
simply the ring-lowest live agent — any replica computes the same one
without a message exchange.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Width of the identifier ring (32-bit, Socket-Project style).
RING_BITS = 32
RING_SIZE = 1 << RING_BITS

STATUS_UP = "up"
STATUS_LEFT = "left"

KIND_NODE = "node"
KIND_AGENT = "agent"


def ring_position(member_id: str) -> int:
    """Stable ring coordinate of *member_id* (sha1, PYTHONHASHSEED-free)."""
    digest = hashlib.sha1(member_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % RING_SIZE


@dataclass
class RosterEntry:
    """One member of the cluster roster (a node or a shard agent)."""

    member_id: str
    host: str
    port: int
    kind: str = KIND_NODE
    shard: Optional[str] = None
    power: float = 0.0
    bandwidth: float = 0.0
    uptime: float = 1.0
    version: int = 1
    status: str = STATUS_UP
    ring: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.ring < 0:
            self.ring = ring_position(self.member_id)

    @property
    def up(self) -> bool:
        return self.status == STATUS_UP

    def to_wire(self) -> Dict[str, Any]:
        """Compact dict for gossip payloads (addresses + capabilities —
        hosted objects/edges never ride the roster, only join forwards)."""
        return {
            "id": self.member_id, "host": self.host, "port": self.port,
            "kind": self.kind, "shard": self.shard,
            "power": self.power, "bandwidth": self.bandwidth,
            "uptime": self.uptime,
            "version": self.version, "status": self.status,
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "RosterEntry":
        return cls(
            member_id=doc["id"], host=doc["host"], port=int(doc["port"]),
            kind=doc.get("kind", KIND_NODE), shard=doc.get("shard"),
            power=float(doc.get("power", 0.0)),
            bandwidth=float(doc.get("bandwidth", 0.0)),
            uptime=float(doc.get("uptime", 1.0)),
            version=int(doc.get("version", 1)),
            status=doc.get("status", STATUS_UP),
        )


class Roster:
    """A replica of the cluster membership map.

    Mutations come from two sources: local membership operations
    (:meth:`upsert`, :meth:`tombstone` — these bump versions) and remote
    gossip (:meth:`merge` — pure LWW, never bumps).
    """

    def __init__(self) -> None:
        self._entries: Dict[str, RosterEntry] = {}

    # -- read side ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._entries

    def get(self, member_id: str) -> Optional[RosterEntry]:
        return self._entries.get(member_id)

    def entries(self) -> List[RosterEntry]:
        return list(self._entries.values())

    def members(
        self, kind: Optional[str] = None, up_only: bool = True
    ) -> List[RosterEntry]:
        out = [
            e for e in self._entries.values()
            if (kind is None or e.kind == kind)
            and (not up_only or e.up)
        ]
        out.sort(key=lambda e: (e.ring, e.member_id))
        return out

    def nodes_up(self) -> List[RosterEntry]:
        return self.members(kind=KIND_NODE)

    def agents_up(self) -> List[RosterEntry]:
        return self.members(kind=KIND_AGENT)

    def ring_ids(self, kind: Optional[str] = None) -> List[str]:
        """Live member ids in ring order."""
        return [e.member_id for e in self.members(kind=kind)]

    def successor(self, key: str, kind: Optional[str] = None) -> Optional[str]:
        """The live member owning *key*: first id at/after its ring
        position, wrapping — the DHT successor rule."""
        ring = self.members(kind=kind)
        if not ring:
            return None
        pos = ring_position(key)
        for entry in ring:
            if entry.ring >= pos:
                return entry.member_id
        return ring[0].member_id

    def coordinator(self) -> Optional[str]:
        """Ring-lowest live agent: the deterministic election runner."""
        agents = self.agents_up()
        return agents[0].member_id if agents else None

    def version_of(self, member_id: str) -> int:
        entry = self._entries.get(member_id)
        return entry.version if entry is not None else 0

    # -- write side --------------------------------------------------------
    def upsert(self, entry: RosterEntry) -> RosterEntry:
        """Local membership op: (re-)announce *entry*, bumping its
        version above whatever this replica has seen (including a
        tombstone, so re-joins win)."""
        prev = self._entries.get(entry.member_id)
        if prev is not None:
            entry.version = max(entry.version, prev.version + 1)
        entry.status = STATUS_UP
        self._entries[entry.member_id] = entry
        return entry

    def tombstone(self, member_id: str) -> Optional[RosterEntry]:
        """Local membership op: mark a departure (rebuild-on-leave)."""
        entry = self._entries.get(member_id)
        if entry is None or entry.status == STATUS_LEFT:
            return None
        entry.version += 1
        entry.status = STATUS_LEFT
        return entry

    def merge_one(self, incoming: RosterEntry) -> bool:
        """LWW merge of one gossiped entry; True if it was applied."""
        current = self._entries.get(incoming.member_id)
        if current is None:
            self._entries[incoming.member_id] = incoming
            return True
        if incoming.version > current.version:
            self._entries[incoming.member_id] = incoming
            return True
        if (
            incoming.version == current.version
            and incoming.status == STATUS_LEFT
            and current.status == STATUS_UP
        ):
            # Tie-break: a departure at the same version wins, so a
            # tombstone is never shadowed by its own pre-leave copy.
            self._entries[incoming.member_id] = incoming
            return True
        return False

    def merge(self, docs: List[Dict[str, Any]]) -> List[RosterEntry]:
        """Merge a gossip page; returns the entries that changed."""
        changed = []
        for doc in docs:
            entry = RosterEntry.from_wire(doc)
            if self.merge_one(entry):
                changed.append(entry)
        return changed

    # -- gossip paging -----------------------------------------------------
    def page(
        self, cursor: int, limit: int
    ) -> Tuple[List[RosterEntry], Optional[int]]:
        """One anti-entropy page in stable (ring, id) order.

        Returns ``(entries, next_cursor)``; ``next_cursor`` is ``None``
        once the roster is exhausted.  Tombstones are included so
        departures propagate.
        """
        ordered = sorted(
            self._entries.values(), key=lambda e: (e.ring, e.member_id)
        )
        window = ordered[cursor:cursor + limit]
        nxt = cursor + limit if cursor + limit < len(ordered) else None
        return window, nxt

    def rotation(self, cursor: int, limit: int) -> Tuple[List[RosterEntry], int]:
        """A wrapping window for periodic gossip; returns the window and
        the advanced cursor, so successive rounds cycle the roster."""
        ordered = sorted(
            self._entries.values(), key=lambda e: (e.ring, e.member_id)
        )
        if not ordered:
            return [], 0
        cursor %= len(ordered)
        window = ordered[cursor:cursor + limit]
        if len(window) < limit:
            window += ordered[:limit - len(window)]
        return window, (cursor + limit) % len(ordered)

    def counts(self) -> Dict[str, int]:
        """Convergence snapshot: members by kind/status."""
        out = {"nodes_up": 0, "agents_up": 0, "left": 0, "total": 0}
        for e in self._entries.values():
            out["total"] += 1
            if not e.up:
                out["left"] += 1
            elif e.kind == KIND_NODE:
                out["nodes_up"] += 1
            elif e.kind == KIND_AGENT:
                out["agents_up"] += 1
        return out

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"<Roster nodes={c['nodes_up']} agents={c['agents_up']} "
            f"left={c['left']}>"
        )

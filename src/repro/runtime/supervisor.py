"""The parent process of the sharded live cluster.

:class:`ClusterSupervisor` spawns one
:class:`~repro.runtime.shard.ShardHost` child per
:class:`~repro.runtime.shard.ShardConfig`, distributes the roster
agents' addresses as gossip seeds, and then supervises:

* **crash → respawn** — a child that exits without reporting
  ``drained`` is respawned with exponential backoff; the respawned
  shard pulls the roster from the surviving agents and its nodes
  re-join under their old ids.
* **task ledger** — RM-side lifecycle events stream up the RM shard's
  pipe; the supervisor relays terminal events to the shard that
  originated each task (so a draining shard knows when its in-flight
  work is finished) and keeps the cluster-wide conservation ledger
  (every task the RM accepted reaches exactly one terminal event).
* **aggregated metrics** — an optional ``/metrics`` endpoint that
  scrapes every shard's per-shard endpoint and serves the merged
  exposition (samples summed per name+labels) plus supervisor-level
  ``shard_up`` / ``restarts`` series.
* **graceful drain** — :meth:`drain` SIGTERMs/messages the peer shards
  first and the RM shard last, so every departing peer's sessions are
  reassigned (§4.5) while the RM is still up.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import urllib.request
from dataclasses import dataclass, field, replace
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.core.control.events import TERMINAL_EVENTS
from repro.runtime.agent import agent_id_for
from repro.runtime.node import NodeSpec
from repro.runtime.shard import ShardConfig, _shard_entry
from repro.telemetry.httpd import TelemetryHTTPServer
from repro.telemetry.logs import get_logger


def partition_specs(
    specs: List[NodeSpec], n_shards: int
) -> List[List[NodeSpec]]:
    """Round-robin node specs over *n_shards* (shard 0 gets the first
    spec, which by convention is the RM candidate)."""
    out: List[List[NodeSpec]] = [[] for _ in range(n_shards)]
    for i, spec in enumerate(specs):
        out[i % n_shards].append(spec)
    return [bucket for bucket in out if bucket]


#: Per-family aggregation for the merged /metrics exposition.
#:
#: The default is **sum** — right for counters and for *additive*
#: gauges where each shard owns a disjoint slice of the cluster fact
#: (``repro_shard_nodes_joined``, ``repro_shard_tasks_inflight``).
#: Families listed here take **max** instead: they are *replicated
#: views* (every shard reports its own copy of the same cluster-wide
#: or per-process fact), and summing N identical replicas would
#: silently report N× the truth — e.g. ``repro_shard_rm_ready`` is a
#: 0/1 flag each shard's roster replica holds, and
#: ``repro_shard_roster_nodes_up`` is every shard's count of the whole
#: roster, not of its own nodes.
DEFAULT_FAMILY_AGG: Dict[str, str] = {
    # Roster replicas: each shard reports the same cluster-wide view.
    "repro_shard_rm_ready": "max",
    "repro_shard_roster_nodes_up": "max",
    "repro_shard_roster_agents_up": "max",
    # Per-process state flags/ratios: summing replicas is meaningless;
    # the worst shard is the cluster answer.
    "repro_flightrecorder_cooldown_active": "max",
    "repro_slo_burn_rate": "max",
    "repro_slo_alert_active": "max",
    "repro_prof_overhead_ratio": "max",
    "repro_prof_overhead_cumulative": "max",
    "repro_prof_budget_target": "max",
    "repro_prof_sample_setting": "max",
}


def _family_of(series: str) -> str:
    """Metric family name of an exposition series string."""
    return series.split("{", 1)[0].strip()


def merge_prometheus(
    texts: List[str],
    family_agg: Optional[Dict[str, str]] = None,
) -> str:
    """Merge several Prometheus text expositions: ``# HELP``/``# TYPE``
    kept once per metric, samples merged per ``name{labels}`` with
    explicit per-family semantics — ``sum`` by default, ``max`` for
    families *family_agg* (default :data:`DEFAULT_FAMILY_AGG`) marks as
    replicated views."""
    agg_for = DEFAULT_FAMILY_AGG if family_agg is None else family_agg
    meta: Dict[str, str] = {}
    meta_order: List[str] = []
    samples: Dict[str, float] = {}
    sample_order: List[str] = []
    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3:
                    key = f"{parts[1]}:{parts[2]}"
                    if key not in meta:
                        meta[key] = line
                        meta_order.append(key)
                continue
            try:
                series, value = line.rsplit(None, 1)
                num = float(value)
            except ValueError:
                continue
            if series not in samples:
                samples[series] = num
                sample_order.append(series)
            elif agg_for.get(_family_of(series)) == "max":
                samples[series] = max(samples[series], num)
            else:
                samples[series] += num
    lines = [meta[k] for k in meta_order]
    lines += [f"{series} {samples[series]}" for series in sample_order]
    return "\n".join(lines) + "\n"


class TaskLedger:
    """Cluster-wide task conservation, fed by the RM shard's stream."""

    def __init__(self) -> None:
        #: tid -> ordered RM-side events.
        self.events: Dict[str, List[str]] = {}
        #: tid -> terminal event name.
        self.terminal: Dict[str, str] = {}
        #: tid -> final outcome string (ok/missed/rejected/failed).
        self.outcomes: Dict[str, Optional[str]] = {}
        self.reassigned = 0
        #: Origin-side counters (acks seen by the submitting shards).
        self.submit_acks = 0
        self.submit_failures = 0

    def on_rm_event(
        self, tid: str, event: str, outcome: Optional[str]
    ) -> None:
        self.events.setdefault(tid, []).append(event)
        if event == "reassigned":
            self.reassigned += 1
        if event in TERMINAL_EVENTS:
            self.terminal[tid] = event
            self.outcomes[tid] = outcome

    def open_tasks(self) -> List[str]:
        """Accepted-by-RM tasks with no terminal event yet."""
        return [t for t in self.events if t not in self.terminal]

    def counts(self) -> Dict[str, int]:
        by_event: Dict[str, int] = {}
        for ev in self.terminal.values():
            by_event[ev] = by_event.get(ev, 0) + 1
        return {
            "seen": len(self.events),
            "terminal": len(self.terminal),
            "open": len(self.events) - len(self.terminal),
            "reassigned": self.reassigned,
            "submit_acks": self.submit_acks,
            "submit_failures": self.submit_failures,
            **by_event,
        }


@dataclass
class _Shard:
    """Supervisor-side bookkeeping for one child."""

    cfg: ShardConfig
    proc: Any = None
    conn: Any = None
    status: str = "spawning"  # ready/running/draining/drained/crashed/failed
    agent_port: Optional[int] = None
    metrics_port: Optional[int] = None
    node_ids: List[str] = field(default_factory=list)
    last_hb: Dict[str, Any] = field(default_factory=dict)
    restarts: int = 0
    ready_event: asyncio.Event = field(default_factory=asyncio.Event)
    drained_event: asyncio.Event = field(default_factory=asyncio.Event)


class ClusterSupervisor:
    """Spawns, seeds, supervises, and drains the shard processes."""

    def __init__(
        self,
        configs: List[ShardConfig],
        serve_metrics: bool = True,
        metrics_port: int = 0,
        respawn: bool = True,
        respawn_backoff: float = 0.5,
        respawn_backoff_max: float = 8.0,
        max_restarts: int = 5,
        start_timeout: float = 60.0,
        observe_dir: Optional[str] = None,
    ) -> None:
        if not configs:
            raise ValueError("need at least one shard config")
        self.configs = {cfg.shard_id: cfg for cfg in configs}
        self.respawn = respawn
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_max = respawn_backoff_max
        self.max_restarts = max_restarts
        self.start_timeout = start_timeout
        self.ledger = TaskLedger()
        self.shards: Dict[str, _Shard] = {}
        #: node_id -> shard_id (static topology, for terminal relays).
        self.node_shard: Dict[str, str] = {}
        for cfg in configs:
            for spec in cfg.specs:
                self.node_shard[spec.node_id] = cfg.shard_id
        self._ctx = multiprocessing.get_context("spawn")
        self._pump_task: Optional[asyncio.Task] = None
        self._respawn_tasks: Dict[str, asyncio.Task] = {}
        self._closing = False
        self.httpd: Optional[TelemetryHTTPServer] = None
        if serve_metrics:
            self.httpd = TelemetryHTTPServer(
                self.metrics_text, health_fn=self.status,
                host=configs[0].host, port=metrics_port,
            )
        self._submit_rr = 0
        #: The cluster observability plane (None unless *observe_dir*).
        self.observe_dir = observe_dir
        self.cluster_health: Optional[Any] = None
        self.coordinator: Optional[Any] = None
        #: shard_id -> open per-shard trace sink for the current
        #: incarnation: {"epoch", "fh", "path"}.
        self._trace_sinks: Dict[str, Dict[str, Any]] = {}
        self._trace_paths: List[str] = []
        self._trace_seq: Dict[str, int] = {}
        #: shard_id -> .folded artifact paths (one per drained
        #: incarnation) and the final profile records.
        self._folded_paths: List[str] = []
        self.shard_profiles: Dict[str, Dict[str, Any]] = {}
        if observe_dir is not None:
            os.makedirs(observe_dir, exist_ok=True)
            # Deferred import: the observability plane pulls in the
            # profiling package, which stays off the default path.
            from repro.runtime.observe import (
                BundleCoordinator,
                ClusterHealth,
            )

            self.coordinator = BundleCoordinator(
                os.path.join(observe_dir, "correlated"),
                fanout=self._fanout_snapshot,
            )
            self.cluster_health = ClusterHealth(recorder=self.coordinator)
        self.log = get_logger("runtime.supervisor")

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "ClusterSupervisor":
        loop = asyncio.get_running_loop()
        if self.httpd is not None:
            self.httpd.start()
        for cfg in self.configs.values():
            self._spawn(cfg.shard_id, respawn=False)
        self._pump_task = loop.create_task(self._pump(), name="sup:pump")
        await asyncio.wait_for(
            asyncio.gather(*(
                sh.ready_event.wait() for sh in self.shards.values()
            )),
            self.start_timeout,
        )
        self._send_seeds()
        return self

    async def __aenter__(self) -> "ClusterSupervisor":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    def _spawn(self, shard_id: str, respawn: bool) -> _Shard:
        cfg = replace(self.configs[shard_id], respawn=respawn)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_entry, args=(cfg, child_conn),
            name=f"shard-{shard_id}",
        )
        proc.start()
        child_conn.close()
        prev = self.shards.get(shard_id)
        sh = _Shard(cfg=cfg, proc=proc, conn=parent_conn)
        if prev is not None:
            sh.restarts = prev.restarts
        self.shards[shard_id] = sh
        self.log.info(
            "spawned shard %s (pid %s, respawn=%s)",
            shard_id, proc.pid, respawn,
        )
        return sh

    def _send_seeds(self) -> None:
        agents = self._agents_map()
        for sh in self.shards.values():
            if sh.agent_port is not None and sh.status in (
                "ready", "running"
            ):
                self._send(sh, {"type": "seeds", "agents": agents})

    def _agents_map(self) -> Dict[str, Tuple[str, int]]:
        return {
            agent_id_for(sid): (sh.cfg.host, sh.agent_port)
            for sid, sh in self.shards.items()
            if sh.agent_port is not None
        }

    def _send(self, sh: _Shard, msg: Dict[str, Any]) -> None:
        try:
            sh.conn.send(msg)
        except (BrokenPipeError, OSError):
            pass

    # -- event pump --------------------------------------------------------
    async def _pump(self) -> None:
        while not self._closing:
            for sid, sh in list(self.shards.items()):
                try:
                    while sh.conn.poll(0):
                        self._on_msg(sid, sh, sh.conn.recv())
                except (EOFError, OSError):
                    pass
                if (
                    sh.proc is not None
                    and not sh.proc.is_alive()
                    and sh.status not in (
                        "drained", "crashed", "failed", "stopped",
                    )
                ):
                    self._on_crash(sid, sh)
            await asyncio.sleep(0.02)

    def _on_msg(self, sid: str, sh: _Shard, msg: Dict[str, Any]) -> None:
        kind = msg.get("type")
        if kind == "ready":
            sh.agent_port = msg["agent_port"]
            sh.metrics_port = msg.get("metrics_port")
            sh.node_ids = msg.get("nodes", [])
            sh.status = "ready"
            sh.ready_event.set()
        elif kind == "hb":
            sh.last_hb = msg
            if (
                sh.status == "ready"
                and msg.get("nodes", 0) > 0
                and msg.get("joined") == msg.get("nodes")
            ):
                sh.status = "running"
            health = msg.get("health")
            if health is not None and self.cluster_health is not None:
                self.cluster_health.ingest(sid, health)
                self.cluster_health.maybe_tick()
        elif kind == "task":
            self.ledger.on_rm_event(
                msg["tid"], msg["ev"], msg.get("outcome")
            )
            if msg["ev"] in TERMINAL_EVENTS:
                self._relay_done(msg["tid"], msg.get("origin"))
        elif kind == "submitted":
            self.ledger.submit_acks += 1
        elif kind == "submit_failed":
            self.ledger.submit_failures += 1
        elif kind == "drained":
            sh.status = "drained"
            sh.drained_event.set()
        elif kind == "trace":
            self._on_trace(sid, msg)
        elif kind == "folded":
            self._on_folded(sid, msg)
        elif kind == "flight":
            if self.coordinator is not None:
                self.coordinator.on_shard_dump(
                    sid, msg.get("reason", "?"), msg.get("path")
                )
        elif kind == "snapshot_done":
            if self.coordinator is not None:
                self.coordinator.on_snapshot_done(
                    sid, msg.get("reason", "?"),
                    msg.get("bundle"), msg.get("path"),
                )
        elif kind == "fatal":
            self.log.warning("shard %s fatal: %s", sid, msg.get("error"))

    def _relay_done(self, tid: str, origin: Optional[str]) -> None:
        shard_id = self.node_shard.get(origin or "")
        if shard_id is None:
            return
        sh = self.shards.get(shard_id)
        if sh is not None and sh.proc is not None and sh.proc.is_alive():
            self._send(sh, {"type": "task_done", "tid": tid})

    # -- observability plane (pipe side) -----------------------------------
    def _on_trace(self, sid: str, msg: Dict[str, Any]) -> None:
        """Land a shard's shipped span/event batch in its per-shard
        JSONL stream.  A respawned shard has a new wall-clock epoch, so
        a meta change rotates to a fresh per-incarnation file — the
        merge treats each incarnation as its own part."""
        if self.observe_dir is None:
            return
        meta = dict(msg.get("meta") or {})
        sink = self._trace_sinks.get(sid)
        if sink is None or sink["epoch"] != meta.get("epoch_unix"):
            if sink is not None:
                self._close_sink(sink)
            seq = self._trace_seq.get(sid, 0)
            self._trace_seq[sid] = seq + 1
            path = os.path.join(
                self.observe_dir, f"trace-{sid}-{seq}.jsonl"
            )
            fh: IO[str] = open(path, "w", encoding="utf-8")
            fh.write(json.dumps({"type": "meta", **meta}) + "\n")
            sink = {"epoch": meta.get("epoch_unix"), "fh": fh, "path": path}
            self._trace_sinks[sid] = sink
            self._trace_paths.append(path)
        fh = sink["fh"]
        for rec in msg.get("records", []):
            fh.write(json.dumps(rec, separators=(",", ":"), default=str))
            fh.write("\n")
        fh.flush()

    def _on_folded(self, sid: str, msg: Dict[str, Any]) -> None:
        if self.observe_dir is None:
            return
        text = msg.get("text") or ""
        if not text:
            return
        seq = len(self._folded_paths)
        path = os.path.join(
            self.observe_dir, f"folded-{sid}-{seq}.folded"
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        self._folded_paths.append(path)
        profile = msg.get("profile")
        if profile is not None:
            self.shard_profiles[sid] = profile

    def _close_sink(self, sink: Dict[str, Any]) -> None:
        try:
            sink["fh"].close()
        except OSError:
            pass

    def _fanout_snapshot(
        self, reason: str, bundle_n: int, exclude: Optional[str]
    ) -> None:
        """BundleCoordinator callback: ask every live shard to dump."""
        for sid, sh in self.shards.items():
            if sid == exclude:
                continue
            if sh.proc is not None and sh.proc.is_alive():
                self._send(sh, {
                    "type": "snapshot", "reason": reason,
                    "bundle": bundle_n,
                })

    def request_snapshot(self, reason: str) -> Optional[str]:
        """Supervisor-initiated correlated bundle (None while cooling
        down or when the plane is off)."""
        if self.coordinator is None:
            return None
        return self.coordinator.trigger(reason)

    def write_cluster_artifacts(self) -> Optional[Dict[str, Any]]:
        """Merge the per-shard streams into the cluster artifacts.

        Call after :meth:`stop` (or at least after the shards of
        interest drained).  Produces ``cluster-trace.jsonl`` — the
        epoch-aligned, id-re-keyed, parent-stitched merge of every
        shard incarnation's stream plus the supervisor's cluster-health
        series — and ``cluster.folded``, the summed flame profile.
        Returns paths plus the cross-shard connectivity summary.
        """
        if self.observe_dir is None:
            return None
        from repro.profiling.folded import merge_folded, read_folded
        from repro.telemetry.cluster import (
            cross_shard_summary,
            merge_traces,
            write_trace_data,
        )
        from repro.telemetry.export import read_jsonl

        for sink in self._trace_sinks.values():
            self._close_sink(sink)
        self._trace_sinks.clear()
        parts = []
        for path in self._trace_paths:
            try:
                parts.append(read_jsonl(path))
            except (OSError, ValueError):
                continue
        merged = merge_traces(parts)
        if self.cluster_health is not None:
            merged.series.extend(self.cluster_health.records())
        trace_path = os.path.join(self.observe_dir, "cluster-trace.jsonl")
        write_trace_data(trace_path, merged)
        folded_path = None
        if self._folded_paths:
            counts = merge_folded(
                read_folded(p) for p in self._folded_paths
            )
            if counts:
                from repro.profiling.folded import write_folded

                folded_path = write_folded(
                    os.path.join(self.observe_dir, "cluster.folded"),
                    counts,
                )
        summary = cross_shard_summary(merged)
        return {
            "trace": trace_path,
            "folded": folded_path,
            "parts": len(parts),
            "stitched_spans": merged.meta.get("stitched_spans", 0),
            "tasks": summary["tasks"],
            "cross_shard_tasks": summary["cross_shard_tasks"],
            "connected_tasks": summary["connected_tasks"],
            "orphan_spans": summary["orphan_spans"],
            "bundles": (
                self.coordinator.record()
                if self.coordinator is not None else []
            ),
            "profiles": self.shard_profiles,
        }

    def _on_crash(self, sid: str, sh: _Shard) -> None:
        sh.status = "crashed"
        self.log.warning(
            "shard %s exited (code %s) without draining",
            sid, sh.proc.exitcode,
        )
        if not self.respawn or self._closing:
            return
        if sh.restarts >= self.max_restarts:
            sh.status = "failed"
            self.log.warning("shard %s exceeded restart budget", sid)
            return
        task = asyncio.get_running_loop().create_task(
            self._respawn(sid), name=f"respawn:{sid}"
        )
        self._respawn_tasks[sid] = task

    async def _respawn(self, sid: str) -> None:
        sh = self.shards[sid]
        backoff = min(
            self.respawn_backoff * (2 ** sh.restarts),
            self.respawn_backoff_max,
        )
        await asyncio.sleep(backoff)
        if self._closing:
            return
        new = self._spawn(sid, respawn=True)
        new.restarts += 1
        try:
            await asyncio.wait_for(
                new.ready_event.wait(), self.start_timeout
            )
        except asyncio.TimeoutError:
            return  # the pump will see the child die and retry
        self._send_seeds()

    # -- application API ---------------------------------------------------
    def submit(self, n: int = 1, shard_id: Optional[str] = None) -> None:
        """Inject *n* task submissions into a shard (round-robin when
        *shard_id* is None)."""
        live = [
            sh for sh in self.shards.values()
            if sh.status == "running" and (
                shard_id is None or sh.cfg.shard_id == shard_id
            )
        ]
        if not live:
            raise RuntimeError("no running shard to submit to")
        sh = live[self._submit_rr % len(live)]
        self._submit_rr += 1
        self._send(sh, {"type": "submit", "n": n})

    def pause_tasks(self) -> None:
        """Stop every shard's task generator (the soak's settle phase)."""
        for sh in self.shards.values():
            self._send(sh, {"type": "pause_tasks"})

    def rm_shard_id(self) -> Optional[str]:
        """The shard hosting the elected RM (from heartbeats)."""
        for sh in self.shards.values():
            rm_id = sh.last_hb.get("rm_id")
            if rm_id:
                return self.node_shard.get(rm_id)
        return None

    async def wait_rm_ready(self, timeout: float = 60.0) -> None:
        """Until every shard's heartbeat reports the RM up and ready."""
        await self._poll_until(
            lambda: all(
                sh.last_hb.get("rm_ready") for sh in self.shards.values()
            ),
            timeout, "rm_ready",
        )

    async def wait_running(
        self, shard_id: Optional[str] = None, timeout: float = 60.0
    ) -> None:
        """Until the shard(s) report every node joined.  Looks the
        shard up by id on every poll: a respawn replaces the
        bookkeeping object, and a freshly killed process may not have
        been noticed by the pump yet — require liveness too."""
        ids = [shard_id] if shard_id is not None else list(self.shards)

        def running() -> bool:
            return all(
                self.shards[sid].status == "running"
                and self.shards[sid].proc is not None
                and self.shards[sid].proc.is_alive()
                for sid in ids
            )

        await self._poll_until(
            running, timeout, f"running:{shard_id or 'all'}",
        )

    async def wait_respawned(
        self, shard_id: str, timeout: float = 60.0
    ) -> None:
        """After a kill: until the shard has been respawned at least
        once more and its nodes have all re-joined."""
        base = self.shards[shard_id].restarts

        def respawned() -> bool:
            sh = self.shards[shard_id]
            return (
                sh.restarts > base
                and sh.status == "running"
                and sh.proc is not None and sh.proc.is_alive()
            )

        await self._poll_until(
            respawned, timeout, f"respawn:{shard_id}",
        )

    async def wait_tasks_settled(self, timeout: float = 60.0) -> None:
        """Until every RM-seen task has reached a terminal event."""
        await self._poll_until(
            lambda: not self.ledger.open_tasks(), timeout, "tasks settled",
        )

    async def _poll_until(
        self, cond, timeout: float, what: str
    ) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not cond():
            if loop.time() > deadline:
                raise asyncio.TimeoutError(f"timed out waiting for {what}")
            await asyncio.sleep(0.05)

    # -- fault injection / drain -------------------------------------------
    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL one shard (the crash the respawn path recovers)."""
        sh = self.shards[shard_id]
        if sh.proc is not None and sh.proc.is_alive():
            sh.proc.kill()

    async def drain_shard(
        self, shard_id: str, timeout: float = 30.0
    ) -> bool:
        """Gracefully drain one shard; True if it reported a clean
        drain and exited."""
        sh = self.shards[shard_id]
        self._respawn_cancel(shard_id)
        self._send(sh, {"type": "drain"})
        if sh.proc is not None and sh.proc.is_alive():
            try:
                sh.proc.terminate()  # SIGTERM: same path as the message
            except (ProcessLookupError, OSError):
                pass
        try:
            await asyncio.wait_for(sh.drained_event.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        await self._join_proc(sh)
        return True

    async def drain(self, timeout: float = 60.0) -> bool:
        """Drain the whole cluster: peer shards first, the RM's last."""
        rm_sid = self.rm_shard_id()
        order = [s for s in self.shards if s != rm_sid]
        ok = True
        results = await asyncio.gather(*(
            self.drain_shard(sid, timeout) for sid in order
        ))
        ok = all(results)
        if rm_sid is not None and rm_sid in self.shards:
            ok = await self.drain_shard(rm_sid, timeout) and ok
        return ok

    def _respawn_cancel(self, shard_id: str) -> None:
        task = self._respawn_tasks.pop(shard_id, None)
        if task is not None and not task.done():
            task.cancel()

    async def _join_proc(self, sh: _Shard, grace: float = 5.0) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while sh.proc.is_alive() and loop.time() < deadline:
            await asyncio.sleep(0.05)
        if sh.proc.is_alive():
            sh.proc.kill()
        sh.proc.join(timeout=1.0)

    async def stop(self) -> None:
        """Tear everything down (SIGTERM, then SIGKILL stragglers)."""
        self._closing = True
        for task in self._respawn_tasks.values():
            if not task.done():
                task.cancel()
        for sh in self.shards.values():
            if sh.proc is not None and sh.proc.is_alive():
                try:
                    sh.proc.terminate()
                except (ProcessLookupError, OSError):
                    pass
        await asyncio.gather(*(
            self._join_proc(sh) for sh in self.shards.values()
        ))
        # The pump exits as soon as _closing flips, but a SIGTERM'd
        # shard drains on its way out — sweep the pipes once after the
        # join so its final trace/profile shipments still land.
        for sid, sh in self.shards.items():
            try:
                while sh.conn.poll(0):
                    self._on_msg(sid, sh, sh.conn.recv())
            except (EOFError, OSError):
                pass
        for sh in self.shards.values():
            sh.status = "stopped"
            try:
                sh.conn.close()
            except OSError:
                pass
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except (asyncio.CancelledError, Exception):
                pass
        for sink in self._trace_sinks.values():
            self._close_sink(sink)
        self._trace_sinks.clear()
        if self.httpd is not None:
            self.httpd.close()

    # -- observability -----------------------------------------------------
    def metrics_text(self) -> str:
        """Aggregated exposition: every shard's /metrics merged, plus
        supervisor-level series.  Runs on the endpoint's thread."""
        texts: List[str] = []
        for sh in list(self.shards.values()):
            if sh.metrics_port is None:
                continue
            url = f"http://{sh.cfg.host}:{sh.metrics_port}/metrics"
            try:
                with urllib.request.urlopen(url, timeout=1.0) as resp:
                    texts.append(resp.read().decode("utf-8"))
            except OSError:
                continue
        merged = merge_prometheus(texts) if texts else ""
        extra = [
            "# HELP repro_supervisor_shard_up 1 while the shard process "
            "is alive",
            "# TYPE repro_supervisor_shard_up gauge",
        ]
        for sid, sh in self.shards.items():
            up = 1 if sh.proc is not None and sh.proc.is_alive() else 0
            extra.append(
                f'repro_supervisor_shard_up{{shard="{sid}"}} {up}'
            )
        extra += [
            "# HELP repro_supervisor_shard_restarts_total respawns "
            "performed for the shard",
            "# TYPE repro_supervisor_shard_restarts_total counter",
        ]
        for sid, sh in self.shards.items():
            extra.append(
                f'repro_supervisor_shard_restarts_total{{shard="{sid}"}} '
                f"{sh.restarts}"
            )
        counts = self.ledger.counts()
        extra += [
            "# HELP repro_supervisor_tasks_open RM-seen tasks with no "
            "terminal event yet",
            "# TYPE repro_supervisor_tasks_open gauge",
            f"repro_supervisor_tasks_open {counts['open']}",
            "# HELP repro_supervisor_tasks_terminal_total tasks that "
            "reached a terminal event",
            "# TYPE repro_supervisor_tasks_terminal_total counter",
            f"repro_supervisor_tasks_terminal_total {counts['terminal']}",
        ]
        if self.cluster_health is not None:
            extra += self.cluster_health.prometheus_lines()
        return merged + "\n".join(extra) + "\n"

    def status(self) -> Dict[str, Any]:
        """Health snapshot (also the aggregated /healthz body)."""
        return {
            "status": "ok",
            "shards": {
                sid: {
                    "status": sh.status,
                    "pid": sh.proc.pid if sh.proc is not None else None,
                    "alive": bool(
                        sh.proc is not None and sh.proc.is_alive()
                    ),
                    "restarts": sh.restarts,
                    "joined": sh.last_hb.get("joined"),
                    "nodes": len(sh.node_ids),
                    "rm_ready": sh.last_hb.get("rm_ready"),
                    "inflight": sh.last_hb.get("inflight"),
                }
                for sid, sh in self.shards.items()
            },
            "tasks": self.ledger.counts(),
        }

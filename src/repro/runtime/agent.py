"""Per-shard roster agent: the decentralized replacement for the
one-shot :class:`~repro.runtime.bootstrap.BootstrapServer`.

Every :class:`~repro.runtime.shard.ShardHost` process runs one
:class:`RosterAgent` — a membership endpoint on the same reliable UDP
transport as the nodes.  Agents seed from each other (addresses handed
out by the supervisor or any live agent), converge a replicated
:class:`~repro.runtime.roster.Roster`, and *any* of them can answer a
``join_request``, so there is no single registration point to lose:

* **join** — record the member, bump its roster version, broadcast the
  delta to the other agents, and acknowledge with the member's role.
  Before the §4.1 election the ack is deferred; afterwards it is
  immediate and the full capability record is forwarded to the elected
  RM exactly like the old bootstrap's late-join path.
* **election** — when a replica first sees the expected node population
  and is the ring-lowest live agent (a leaderless, deterministic
  choice), it ranks candidates with the §4.1
  :class:`~repro.overlay.qualification.QualificationPolicy` and
  broadcasts the result.  The agent hosting the winner announces
  ``rm_ready`` once the local node has assumed the role; only then do
  the other agents release their deferred acks — so no peer ever
  heartbeats into a void.
* **gossip** — roster deltas ride the existing ``gossip_summaries``
  kind (payloads are plain dicts; wire format stays v1), with periodic
  rotating anti-entropy pages for convergence under loss and a
  ``gossip_digest`` pull protocol for crash-respawned agents to rebuild
  their replica before re-registering their nodes under the old ids.
* **leave** — a ``peer_leave`` tombstones the entry and the delta
  propagates (rebuild-on-leave); re-joins bump the version past the
  tombstone.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import protocol
from repro.net.message import Message
from repro.overlay.qualification import QualificationPolicy
from repro.runtime.roster import (
    KIND_AGENT,
    KIND_NODE,
    Roster,
    RosterEntry,
)
from repro.runtime.transport import PeerDirectory, UdpTransport
from repro.telemetry.logs import get_logger

#: Agent ids are derived from the shard id; they live in the same
#: directory namespace as node ids.
AGENT_PREFIX = "roster@"


def agent_id_for(shard_id: str) -> str:
    return f"{AGENT_PREFIX}{shard_id}"


class RosterAgent:
    """One shard's membership endpoint (no event kernel — pure asyncio)."""

    def __init__(
        self,
        shard_id: str,
        directory: PeerDirectory,
        domain_id: str = "d0",
        expected_nodes: Optional[int] = None,
        policy: Optional[QualificationPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        gossip_period: float = 1.0,
        gossip_fanout: int = 2,
        page_size: int = 100,
        on_rm_state: Optional[Callable[[str, bool, int], None]] = None,
        rng: Optional[random.Random] = None,
        **transport_kwargs: Any,
    ) -> None:
        self.shard_id = shard_id
        self.node_id = agent_id_for(shard_id)
        self.domain_id = domain_id
        self.expected_nodes = expected_nodes
        self.policy = policy or QualificationPolicy()
        self.directory = directory
        self.gossip_period = gossip_period
        self.gossip_fanout = gossip_fanout
        self.page_size = page_size
        self.on_rm_state = on_rm_state
        self.rng = rng or random.Random()
        self.transport = UdpTransport(
            self.node_id, directory, self._handle, host=host, port=port,
            **transport_kwargs,
        )
        self.roster = Roster()
        #: pid -> full JOIN_REQUEST payload (capabilities + objects/edges);
        #: kept for RM (re-)introduction, never gossiped.
        self.records: Dict[str, Dict[str, Any]] = {}
        #: Node ids hosted by this shard's own process.
        self.local_pids: set = set()
        #: pids that joined but whose ack waits for rm_ready.
        self.pending: Dict[str, bool] = {}
        # RM state replica: (epoch, ready) is monotone; epoch bumps on
        # every (re-)announcement of an assumed RM.
        self.rm_id: Optional[str] = None
        self.rm_ready = False
        self.rm_epoch = 0
        self._forwarded_epoch = 0
        self.draining = False
        self._gossip_task: Optional[asyncio.Task] = None
        self._gossip_cursor = 0
        self._pull_future: Optional[asyncio.Future] = None
        self.log = get_logger("runtime.agent", self.node_id)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "RosterAgent":
        await self.transport.start()
        self.roster.upsert(self._self_entry())
        # The shard's nodes address their agent through the shared
        # directory before any gossip has run.
        self.directory.add(
            self.node_id, self.transport.host, self.transport.port
        )
        self._gossip_task = asyncio.get_running_loop().create_task(
            self._gossip_loop(), name=f"gossip:{self.node_id}"
        )
        return self

    def _self_entry(self) -> RosterEntry:
        return RosterEntry(
            member_id=self.node_id, host=self.transport.host,
            port=self.transport.port, kind=KIND_AGENT, shard=self.shard_id,
        )

    async def close(self, graceful: bool = False) -> None:
        if self._gossip_task is not None:
            self._gossip_task.cancel()
            try:
                await self._gossip_task
            except (asyncio.CancelledError, Exception):
                pass
            self._gossip_task = None
        if graceful:
            entry = self.roster.tombstone(self.node_id)
            if entry is not None:
                self._broadcast_entries([entry])
            await self.transport.flush(timeout=1.0)
        await self.transport.aclose()

    # -- seeding -----------------------------------------------------------
    def add_seed_agents(
        self, agents: Dict[str, Tuple[str, int]]
    ) -> None:
        """Learn other agents' addresses (from the supervisor or any
        live agent); they enter the roster as they gossip."""
        for aid, (host, port) in agents.items():
            if aid == self.node_id:
                continue
            self.directory.add(aid, host, port)
            if aid not in self.roster:
                self.roster.merge_one(RosterEntry(
                    member_id=aid, host=host, port=int(port),
                    kind=KIND_AGENT, shard=aid[len(AGENT_PREFIX):],
                ))

    async def pull_roster(
        self, timeout: float = 5.0, per_page_timeout: float = 1.0
    ) -> bool:
        """Anti-entropy pull from any live agent (crash-respawn path).

        Pages through a seed's roster via ``gossip_digest`` requests;
        returns True once a full pass succeeded against some seed.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        seeds = [
            e.member_id for e in self.roster.agents_up()
            if e.member_id != self.node_id
        ]
        self.rng.shuffle(seeds)
        for seed in seeds:
            cursor: Optional[int] = 0
            ok = True
            while cursor is not None and loop.time() < deadline:
                self._pull_future = loop.create_future()
                self.transport.send(Message(
                    kind=protocol.GOSSIP_DIGEST, src=self.node_id,
                    dst=seed, payload={"roster_pull": {"cursor": cursor}},
                    size=protocol.size_of(protocol.GOSSIP_DIGEST),
                ))
                try:
                    cursor = await asyncio.wait_for(
                        self._pull_future, per_page_timeout
                    )
                except asyncio.TimeoutError:
                    ok = False
                    break
                finally:
                    self._pull_future = None
            if ok and cursor is None:
                # The pulled roster contains the dead incarnation's
                # entry for this agent id; re-announce above it so the
                # new address wins the LWW merge everywhere.
                entry = self.roster.upsert(self._self_entry())
                self._broadcast_entries([entry])
                return True
        return False

    # -- local node registration ------------------------------------------
    def register_local(self, pid: str) -> None:
        """Mark *pid* as hosted in this shard's process (so its record
        is (re-)introduced to every new RM incarnation)."""
        self.local_pids.add(pid)

    def begin_drain(self) -> None:
        """Stop admitting joins; existing members keep being served."""
        self.draining = True

    def announce_rm_ready(self) -> None:
        """Called by the host once the local RM node assumed its role."""
        state = {
            "rm_id": self.rm_id,
            "ready": True,
            "epoch": self.rm_epoch + 1,
        }
        self._apply_rm_state(state)
        self._broadcast_entries([], extra_state=True)

    def tombstone_local(self, pid: str) -> None:
        """Departure of a locally hosted node (drain path)."""
        entry = self.roster.tombstone(pid)
        self.pending.pop(pid, None)
        if entry is not None:
            self._broadcast_entries([entry])

    # -- message handling --------------------------------------------------
    def _handle(self, msg: Message) -> None:
        if msg.kind == protocol.JOIN_REQUEST:
            self._handle_join(msg)
        elif msg.kind == protocol.PEER_LEAVE:
            self._handle_leave(msg)
        elif msg.kind == protocol.GOSSIP_SUMMARIES:
            self._handle_gossip(msg)
        elif msg.kind == protocol.GOSSIP_DIGEST:
            self._handle_pull(msg)
        # anything else: dropped, datagram-style

    def _handle_join(self, msg: Message) -> None:
        if self.draining:
            return  # admission stopped; the joiner retries another seed
        rec = msg.payload
        pid = rec.get("peer_id", msg.src)
        self.records[pid] = dict(rec)
        self.directory.add(pid, rec["host"], rec["port"])
        entry = self.roster.upsert(RosterEntry(
            member_id=pid, host=rec["host"], port=int(rec["port"]),
            kind=KIND_NODE, shard=rec.get("shard", self.shard_id),
            power=float(rec.get("power", 0.0)),
            bandwidth=float(rec.get("bandwidth", 0.0)),
            uptime=float(rec.get("uptime", 1.0)),
        ))
        self._broadcast_entries([entry])
        if self.rm_id is None:
            self.pending[pid] = True
            self._maybe_elect()
        elif pid == self.rm_id:
            # The RM (re-)joining — its host announces rm_ready once the
            # role is assumed; re-introduction follows on the new epoch.
            self.pending.pop(pid, None)
            self._ack(pid, role="rm")
        elif not self.rm_ready:
            self.pending[pid] = True
        else:
            self._ack(pid, role="peer")
            self._forward_record(pid)

    def _handle_leave(self, msg: Message) -> None:
        pid = msg.payload.get("peer_id", msg.src)
        entry = self.roster.tombstone(pid)
        self.pending.pop(pid, None)
        if entry is not None:
            self._broadcast_entries([entry])
        self.directory.remove(pid)

    def _handle_gossip(self, msg: Message) -> None:
        payload = msg.payload
        docs = payload.get("roster")
        if isinstance(docs, list):
            changed = self.roster.merge(docs)
            self._sync_directory(changed)
            if changed:
                # The final member may reach the coordinator via gossip
                # rather than a local join — check the election here too.
                self._maybe_elect()
        state = payload.get("rm")
        if isinstance(state, dict):
            self._apply_rm_state(state)
        pull = payload.get("pull_reply")
        if isinstance(pull, dict) and self._pull_future is not None:
            if not self._pull_future.done():
                self._pull_future.set_result(pull.get("next"))

    def _handle_pull(self, msg: Message) -> None:
        req = msg.payload.get("roster_pull")
        if not isinstance(req, dict):
            return
        cursor = int(req.get("cursor", 0))
        entries, nxt = self.roster.page(cursor, self.page_size)
        self.transport.send(Message(
            kind=protocol.GOSSIP_SUMMARIES, src=self.node_id, dst=msg.src,
            payload={
                "roster": [e.to_wire() for e in entries],
                "rm": self._rm_state(),
                "pull_reply": {"next": nxt},
            },
            size=protocol.size_of(protocol.GOSSIP_SUMMARIES),
        ))

    # -- election ----------------------------------------------------------
    def _maybe_elect(self) -> None:
        if self.rm_id is not None or not self.expected_nodes:
            return
        ups = self.roster.nodes_up()
        if len(ups) < self.expected_nodes:
            return
        if self.roster.coordinator() != self.node_id:
            return
        candidates = [
            (e.member_id, e.power, e.bandwidth, e.uptime) for e in ups
        ]
        eligible = self.policy.rank(candidates)
        if eligible:
            rm_id = eligible[0]
        else:
            # Nobody clears the §4.1 minimums: most affluent wins anyway.
            rm_id = max(
                candidates, key=lambda c: (c[1] * c[2] * c[3], c[0])
            )[0]
        self.log.info(
            "elected %s over %d candidates", rm_id, len(candidates)
        )
        self._apply_rm_state({"rm_id": rm_id, "ready": False, "epoch": 1})
        self._broadcast_entries([], extra_state=True)

    def _rm_state(self) -> Dict[str, Any]:
        return {
            "rm_id": self.rm_id, "ready": self.rm_ready,
            "epoch": self.rm_epoch,
        }

    def _apply_rm_state(self, state: Dict[str, Any]) -> None:
        rm_id = state.get("rm_id")
        if rm_id is None:
            return
        epoch = int(state.get("epoch", 0))
        ready = bool(state.get("ready", False))
        if self.rm_id is not None and (
            (epoch, ready) <= (self.rm_epoch, self.rm_ready)
        ):
            return
        self.rm_id = rm_id
        self.rm_epoch = epoch
        self.rm_ready = ready
        if rm_id in self.pending:
            # This shard hosts the winner: ack it so it assumes the role.
            self.pending.pop(rm_id, None)
            self._ack(rm_id, role="rm")
        if self.on_rm_state is not None:
            self.on_rm_state(rm_id, ready, epoch)
        if ready and self._forwarded_epoch < epoch:
            self._forwarded_epoch = epoch
            for pid in list(self.pending):
                self.pending.pop(pid, None)
                if pid != rm_id:
                    self._ack(pid, role="peer")
            # (Re-)introduce every record this agent holds — a fresh RM
            # incarnation rebuilds its information base from the shards.
            for pid in list(self.records):
                if pid != rm_id:
                    self._forward_record(pid)

    # -- outbound ----------------------------------------------------------
    def _ack(self, pid: str, role: str) -> None:
        roster_slice: Dict[str, Dict[str, Any]] = {}
        # Address-only entries (no "power" key — the live node skips
        # info-base admission for these): the RM and this agent, enough
        # for an external v1 node to reach the control plane.
        if self.rm_id is not None:
            rm_entry = self.roster.get(self.rm_id)
            if rm_entry is not None:
                roster_slice[self.rm_id] = {
                    "peer_id": self.rm_id, "host": rm_entry.host,
                    "port": rm_entry.port,
                }
        roster_slice[self.node_id] = {
            "peer_id": self.node_id, "host": self.transport.host,
            "port": self.transport.port,
        }
        self.transport.send(Message(
            kind=protocol.JOIN_ACK, src=self.node_id, dst=pid,
            payload={
                "role": role,
                "rm_id": self.rm_id,
                "domain_id": self.domain_id,
                "roster": roster_slice,
            },
            size=protocol.size_of(protocol.JOIN_ACK),
        ))

    def _forward_record(self, pid: str) -> None:
        """Hand a member's full record to the RM (old bootstrap path)."""
        rec = self.records.get(pid)
        if rec is None or self.rm_id is None:
            return
        if self.rm_id not in self.directory:
            return
        self.transport.send(Message(
            kind=protocol.JOIN_REQUEST, src=self.node_id, dst=self.rm_id,
            payload=dict(rec),
            size=protocol.size_of(protocol.JOIN_REQUEST),
        ))

    def _other_agents(self) -> List[str]:
        known = {
            e.member_id for e in self.roster.agents_up()
        }
        known.update(
            aid for aid in self.directory.known()
            if aid.startswith(AGENT_PREFIX)
        )
        known.discard(self.node_id)
        return sorted(known)

    def _broadcast_entries(
        self, entries: List[RosterEntry], extra_state: bool = False
    ) -> None:
        """Push a delta (and always the RM state) to every known agent."""
        del extra_state  # state rides every broadcast regardless
        payload = {
            "roster": [e.to_wire() for e in entries],
            "rm": self._rm_state(),
        }
        for aid in self._other_agents():
            self.transport.send(Message(
                kind=protocol.GOSSIP_SUMMARIES, src=self.node_id, dst=aid,
                payload=payload,
                size=protocol.size_of(protocol.GOSSIP_SUMMARIES),
            ))

    def _sync_directory(self, changed: List[RosterEntry]) -> None:
        for entry in changed:
            if entry.up:
                self.directory.add(entry.member_id, entry.host, entry.port)
            else:
                self.directory.remove(entry.member_id)

    async def _gossip_loop(self) -> None:
        """Periodic anti-entropy: a rotating roster page to K agents."""
        while True:
            await asyncio.sleep(self.gossip_period)
            others = self._other_agents()
            if not others:
                continue
            window, self._gossip_cursor = self.roster.rotation(
                self._gossip_cursor, self.page_size
            )
            payload = {
                "roster": [e.to_wire() for e in window],
                "rm": self._rm_state(),
            }
            fanout = min(self.gossip_fanout, len(others))
            for aid in self.rng.sample(others, fanout):
                self.transport.send(Message(
                    kind=protocol.GOSSIP_SUMMARIES, src=self.node_id,
                    dst=aid, payload=payload,
                    size=protocol.size_of(protocol.GOSSIP_SUMMARIES),
                ))

    def counts(self) -> Dict[str, int]:
        return self.roster.counts()

    def __repr__(self) -> str:
        return (
            f"<RosterAgent {self.node_id} {self.roster!r} "
            f"rm={self.rm_id} ready={self.rm_ready}>"
        )

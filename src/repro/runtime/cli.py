"""``repro-live`` — run a live UDP domain and stream one media task.

Boots an in-process :class:`~repro.runtime.cluster.LiveCluster`
(bootstrap + RM candidate + N peers on localhost UDP sockets), submits
a Figure-1 media task from a peer, waits for the ``TASK_REQUEST →
TASK_ACK → COMPOSE → STREAM → TASK_DONE`` chain to finish over the
wire, and prints per-node traffic summaries.

Example::

    repro-live --peers 4 --origin P4 --deadline 20

With ``--shards N`` the same domain runs on the sharded multi-process
runtime instead: a :class:`~repro.runtime.supervisor.ClusterSupervisor`
spawns one ``ShardHost`` process per shard, the decentralized roster
assembles the domain, and the tasks are injected through the
supervisor's control pipe::

    repro-live --peers 64 --shards 4 --tasks 8
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.runtime.cluster import LiveCluster, LiveClusterConfig
from repro.telemetry.logs import configure_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description=(
            "Run the middleware protocol over real localhost UDP sockets: "
            "bootstrap a domain, elect an RM, and stream a media task."
        ),
    )
    parser.add_argument(
        "--peers", type=int, default=4,
        help="number of worker peers (plus one RM candidate; default 4)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the domain on N supervised shard processes instead of "
        "a single in-process loop (default 0 = in-process)",
    )
    parser.add_argument(
        "--origin", default="P4",
        help="peer that submits the task (default P4)",
    )
    parser.add_argument(
        "--deadline", type=float, default=20.0,
        help="task deadline in seconds (default 20)",
    )
    parser.add_argument(
        "--duration", type=float, default=3.0,
        help="media object duration in seconds; work scales with it "
        "(default 3)",
    )
    parser.add_argument(
        "--tasks", type=int, default=1,
        help="how many tasks to submit back-to-back (default 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="wall-clock completion timeout per task (default 30)",
    )
    parser.add_argument(
        "--policy", default="paper",
        choices=(
            "paper", "fairness", "first", "random", "least_loaded",
            "round_robin",
        ),
        help="placement policy the elected RM runs (default paper)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a telemetry trace (spans/events/metrics) to a JSONL "
        "file; analyse it with repro-trace",
    )
    parser.add_argument(
        "--sample", metavar="PERIOD", nargs="?", const=0.5, type=float,
        default=None,
        help="sample health series every PERIOD wall seconds (default "
        "0.5) on a daemon thread and attach them to the --trace file; "
        "view with repro-dash",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach the wall-clock sampling profiler + overhead "
        "budgeter (and, with --sample, SLO burn-rate alerting over the "
        "health series); writes a flame-ready .folded file on exit",
    )
    parser.add_argument(
        "--profile-budget", type=float, default=None, metavar="FRAC",
        help="observability overhead budget as a fraction of wall time "
        "(default 0.02); the budgeter backs sampling off above it",
    )
    parser.add_argument(
        "--profile-folded", metavar="FILE", default=None,
        help="where to write the folded stacks (default: profile.folded "
        "next to the trace, or ./profile.folded)",
    )
    parser.add_argument(
        "--defense", action="store_true",
        help="reputation-gated load reports (rm.enable_defense): the "
        "elected RM cross-checks peer claims against observed evidence "
        "and quarantines chronic liars (see docs/scenarios.md)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text /metrics and /healthz on "
        "127.0.0.1:PORT while the run is live (0 = ephemeral port)",
    )
    parser.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the cluster (and /metrics endpoint) up this many "
        "seconds after the tasks finish (default 0)",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL",
        help="enable structured per-node logging at LEVEL "
        "(e.g. INFO, DEBUG; off by default)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="with --log-level: one JSON object per log line",
    )
    return parser


async def run_live(
    args: argparse.Namespace, tel: Optional[Any] = None
) -> Dict[str, Any]:
    config = LiveClusterConfig(
        n_peers=args.peers, object_duration_s=args.duration,
        placement_policy=args.policy,
        enable_defense=getattr(args, "defense", False),
    )
    cluster = LiveCluster(config)
    known = sorted(s.node_id for s in cluster.specs)
    if args.origin not in known:
        raise ValueError(
            f"unknown origin peer {args.origin!r}; choose from "
            f"{', '.join(known)}"
        )
    report: Dict[str, Any] = {"tasks": []}
    server = None
    profile_sess = None
    async with cluster:
        sampler = None
        if tel is not None and args.sample is not None:
            sampler = cluster.start_health_sampler(
                tel, period=args.sample
            )
            report["sampler"] = sampler
        if args.profile:
            from repro.profiling import DEFAULT_BUDGET, profile_wall

            profile_sess = profile_wall(
                tel=tel, sampler=sampler,
                budget=(
                    args.profile_budget
                    if args.profile_budget is not None else DEFAULT_BUDGET
                ),
            )
            report["profile_session"] = profile_sess
        if args.metrics_port is not None:
            if tel is None:
                raise ValueError("--metrics-port requires --trace")
            from repro.telemetry.httpd import TelemetryHTTPServer

            def _metrics_text() -> str:
                # Fold the live profiler/budgeter state into the
                # registry on each scrape.
                if profile_sess is not None:
                    profile_sess.publish(tel.metrics)
                return tel.metrics.to_prometheus_text()

            def _health() -> Dict[str, Any]:
                doc: Dict[str, Any] = {
                    "status": "ok",
                    "nodes": len(cluster.nodes),
                }
                if profile_sess is not None:
                    doc["profiler"] = profile_sess.summary()
                return doc

            server = TelemetryHTTPServer(
                _metrics_text,
                health_fn=_health,
                port=args.metrics_port,
            ).start()
            print(f"metrics endpoint: {server.url}/metrics",
                  file=sys.stderr)
        try:
            rm = cluster.rm_node
            report["rm"] = rm.node_id
            report["peers"] = sorted(n.node_id for n in cluster.peers())
            for _ in range(args.tasks):
                ack = await cluster.submit(
                    args.origin, deadline=args.deadline,
                    timeout=args.timeout,
                )
                entry: Dict[str, Any] = {"ack": dict(ack)}
                task_id = ack.get("task_id")
                if ack.get("disposition") == "accepted" and task_id:
                    await cluster.wait_task_event(
                        task_id, "completed", timeout=args.timeout,
                    )
                    task = cluster.task(task_id)
                    entry["state"] = task.state.name
                    entry["events"] = [
                        ev for _, tid, ev in cluster.task_events
                        if tid == task_id
                    ]
                report["tasks"].append(entry)
            if args.linger > 0:
                await asyncio.sleep(args.linger)
            report["summaries"] = cluster.summaries()
            report["aggregate"] = cluster.aggregate_summary()
        finally:
            if profile_sess is not None:
                profile_sess.stop()
            if server is not None:
                server.close()
    return report


async def run_sharded(args: argparse.Namespace) -> Dict[str, Any]:
    """The ``--shards`` path: the same fig-1 style domain, but hosted
    by supervised shard processes with the decentralized roster."""
    from repro.runtime.soak import SoakConfig, soak_shard_configs
    from repro.runtime.supervisor import ClusterSupervisor

    cfg = SoakConfig(
        peers=args.peers, shards=args.shards,
        task_rate=0.0, kill=False, drain=False,
        task_deadline=args.deadline,
        object_duration_s=args.duration,
        metrics_port=args.metrics_port or 0,
    )
    sup = ClusterSupervisor(
        soak_shard_configs(cfg),
        serve_metrics=args.metrics_port is not None,
        metrics_port=args.metrics_port or 0,
        start_timeout=cfg.join_timeout,
    )
    report: Dict[str, Any] = {"shards": args.shards}
    loop = asyncio.get_running_loop()
    try:
        await sup.start()
        await sup.wait_running(timeout=cfg.join_timeout)
        await sup.wait_rm_ready(timeout=cfg.join_timeout)
        report["rm_shard"] = sup.rm_shard_id()
        if args.metrics_port is not None and sup.httpd is not None:
            print(f"metrics endpoint: {sup.httpd.url}/metrics",
                  file=sys.stderr)
        sup.submit(args.tasks)
        # The ledger only knows about a task once its origin shard acks
        # the submission, so wait for the acks before "settled".
        deadline = loop.time() + args.timeout * max(1, args.tasks)
        while loop.time() < deadline:
            c = sup.ledger.counts()
            if c["submit_acks"] + c["submit_failures"] >= args.tasks:
                break
            await asyncio.sleep(0.1)
        await sup.wait_tasks_settled(
            timeout=max(1.0, deadline - loop.time())
        )
        if args.linger > 0:
            await asyncio.sleep(args.linger)
        report["tasks"] = sup.ledger.counts()
        report["status"] = sup.status()
    finally:
        await sup.stop()
    return report


def _print_sharded_text(report: Dict[str, Any]) -> None:
    counts = report["tasks"]
    print(
        f"sharded domain up: {report['shards']} shards, "
        f"RM on {report['rm_shard']}"
    )
    print(
        f"tasks: submitted={counts['submit_acks']} "
        f"terminal={counts['terminal']} open={counts['open']} "
        f"failed_submits={counts['submit_failures']}"
    )
    base = {
        "seen", "terminal", "open", "reassigned",
        "submit_acks", "submit_failures",
    }
    by_event = ", ".join(
        f"{k}={n}" for k, n in sorted(counts.items()) if k not in base
    )
    if by_event:
        print(f"outcomes: {by_event}")


def _print_text(report: Dict[str, Any]) -> None:
    print(f"domain up: RM={report['rm']} peers={', '.join(report['peers'])}")
    for i, entry in enumerate(report["tasks"], 1):
        ack = entry["ack"]
        line = f"task {i}: {ack.get('disposition', '?')}"
        if "state" in entry:
            line += f" -> {entry['state']} ({' -> '.join(entry['events'])})"
        print(line)
    agg = report["aggregate"]
    print(
        f"traffic: sent={agg['sent']} delivered={agg['delivered']} "
        f"dropped={agg['dropped']}"
    )
    kinds = ", ".join(
        f"{k}={n}" for k, n in sorted(agg["by_kind"].items())
    )
    print(f"by kind: {kinds}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.peers < 1:
        parser.error("--peers must be at least 1 (an RM needs a domain)")
    if args.origin == "P4" and args.peers < 4:
        args.origin = "P1"
    if args.log_level:
        configure_logging(args.log_level, json_lines=args.log_json)
    if args.sample is not None and not args.trace:
        parser.error("--sample requires --trace")
    if args.profile_budget is not None and not args.profile:
        parser.error("--profile-budget requires --profile")
    if args.profile_folded and not args.profile:
        parser.error("--profile-folded requires --profile")
    if args.shards:
        if args.shards < 1:
            parser.error("--shards must be at least 1")
        if args.trace or args.profile or args.sample is not None:
            parser.error(
                "--trace/--sample/--profile are in-process features; "
                "with --shards use --record-dir on repro-live-soak or "
                "each shard's own /metrics"
            )
        try:
            report = asyncio.run(run_sharded(args))
        except (asyncio.TimeoutError, TimeoutError):
            print("error: sharded live run timed out", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(report, indent=2, default=str))
        else:
            _print_sharded_text(report)
        counts = report["tasks"]
        failed = (
            counts["open"] > 0
            or counts["submit_failures"] > 0
            or counts["submit_acks"] < args.tasks
        )
        return 1 if failed else 0
    if args.metrics_port is not None and not args.trace:
        parser.error("--metrics-port requires --trace (it serves the "
                     "run's metrics registry)")
    tel = None
    if args.trace:
        tel = telemetry.activate(telemetry.Telemetry.wall())
    report: Optional[Dict[str, Any]] = None
    sampler = None
    profile_sess = None
    try:
        try:
            report = asyncio.run(run_live(args, tel=tel))
            if report is not None:
                sampler = report.pop("sampler", None)
                profile_sess = report.pop("profile_session", None)
        except (asyncio.TimeoutError, TimeoutError):
            print("error: live run timed out", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    finally:
        if profile_sess is not None:
            if tel is not None:
                profile_sess.publish(tel.metrics)
            folded = args.profile_folded or os.path.join(
                os.path.dirname(args.trace) if args.trace else ".",
                "profile.folded",
            )
            path = profile_sess.write_folded(folded)
            info = profile_sess.summary()
            print(
                f"profiler: {info['samples']} samples / "
                f"{info['unique_stacks']} stacks; overhead "
                f"{info['overhead_ratio']:.2%} "
                f"(budget {info['budget']:.0%}, "
                f"{info['retunes']} retunes)"
                + (f" -> {path}" if path else ""),
                file=sys.stderr,
            )
            for alert in profile_sess.alerts:
                print(
                    f"SLO ALERT: {alert.slo} burning {alert.burn:.1f}x "
                    f"({alert.window} window, t={alert.time:.1f}s)"
                    + (f" -> {alert.dump}" if alert.dump else ""),
                    file=sys.stderr,
                )
        if tel is not None:
            tel.tracer.finish_open()
            meta: Dict[str, Any] = {"runtime": "live"}
            if report is not None:
                meta["aggregate"] = report["aggregate"]
            telemetry.export.write_jsonl(
                args.trace, tel.tracer, tel.metrics, meta=meta,
                sampler=sampler,
                profile=(
                    profile_sess.record() if profile_sess else None
                ),
            )
            telemetry.deactivate()
            print(f"telemetry trace -> {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        _print_text(report)
    failed = any(
        e["ack"].get("disposition") == "accepted" and e.get("state") != "DONE"
        for e in report["tasks"]
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

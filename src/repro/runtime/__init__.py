"""Live asyncio/UDP runtime for the middleware protocol.

The simulator (:mod:`repro.sim` + :mod:`repro.net`) and this package run
the *same* protocol objects (:class:`~repro.core.peer.Peer`,
:class:`~repro.core.manager.ResourceManager`) — the runtime swaps the
fabric underneath them:

:mod:`repro.runtime.codec`
    Versioned JSON wire format for :class:`~repro.net.message.Message`.
:mod:`repro.runtime.transport`
    The :class:`Transport` abstraction with a simulated
    (:class:`SimTransport`) and a live UDP (:class:`UdpTransport`)
    implementation (acks, retries, duplicate suppression).
:mod:`repro.runtime.node`
    :class:`LiveNode`: one protocol endpoint whose event kernel is
    pumped in wall-clock time on an asyncio loop.
:mod:`repro.runtime.bootstrap`
    The registration service that seeds a domain and runs the §4.1 RM
    qualification election.
:mod:`repro.runtime.cluster`
    :class:`LiveCluster`: an in-process N-peers-plus-RM harness for
    tests and demos.
:mod:`repro.runtime.roster`
    The decentralized membership replica (ring-ordered, versioned,
    gossip-merged) behind the sharded runtime.
:mod:`repro.runtime.agent`
    :class:`RosterAgent`: one per shard process — answers joins,
    gossips the roster, runs the coordinator-side election trigger.
:mod:`repro.runtime.shard`
    :class:`ShardHost`: a child process pumping its bucket of
    :class:`LiveNode` s, reporting over the supervisor's control pipe.
:mod:`repro.runtime.supervisor`
    :class:`ClusterSupervisor`: spawns/respawns shards, relays task
    events, aggregates ``/metrics``, orchestrates drains.
:mod:`repro.runtime.soak`
    The ``repro-live-soak`` scenario: sustained load plus fault
    injection against the sharded cluster (see ``docs/runtime.md``).
"""

from repro.runtime.codec import (
    WIRE_VERSION,
    WireFormatError,
    decode_frame,
    encode_ack,
    encode_message,
)
from repro.runtime.transport import (
    PeerDirectory,
    SimTransport,
    Transport,
    UdpTransport,
)
from repro.runtime.node import LiveNode, NodeSpec, SimClockPump
from repro.runtime.bootstrap import BootstrapServer
from repro.runtime.cluster import LiveCluster, LiveClusterConfig
from repro.runtime.roster import Roster, RosterEntry, ring_position
from repro.runtime.agent import RosterAgent
from repro.runtime.shard import ShardConfig, ShardHost
from repro.runtime.supervisor import (
    ClusterSupervisor,
    TaskLedger,
    merge_prometheus,
    partition_specs,
)
from repro.runtime.soak import SoakConfig, run_soak

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "decode_frame",
    "encode_ack",
    "encode_message",
    "PeerDirectory",
    "SimTransport",
    "Transport",
    "UdpTransport",
    "LiveNode",
    "NodeSpec",
    "SimClockPump",
    "BootstrapServer",
    "LiveCluster",
    "LiveClusterConfig",
    "Roster",
    "RosterEntry",
    "ring_position",
    "RosterAgent",
    "ShardConfig",
    "ShardHost",
    "ClusterSupervisor",
    "TaskLedger",
    "merge_prometheus",
    "partition_specs",
    "SoakConfig",
    "run_soak",
]

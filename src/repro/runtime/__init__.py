"""Live asyncio/UDP runtime for the middleware protocol.

The simulator (:mod:`repro.sim` + :mod:`repro.net`) and this package run
the *same* protocol objects (:class:`~repro.core.peer.Peer`,
:class:`~repro.core.manager.ResourceManager`) — the runtime swaps the
fabric underneath them:

:mod:`repro.runtime.codec`
    Versioned JSON wire format for :class:`~repro.net.message.Message`.
:mod:`repro.runtime.transport`
    The :class:`Transport` abstraction with a simulated
    (:class:`SimTransport`) and a live UDP (:class:`UdpTransport`)
    implementation (acks, retries, duplicate suppression).
:mod:`repro.runtime.node`
    :class:`LiveNode`: one protocol endpoint whose event kernel is
    pumped in wall-clock time on an asyncio loop.
:mod:`repro.runtime.bootstrap`
    The registration service that seeds a domain and runs the §4.1 RM
    qualification election.
:mod:`repro.runtime.cluster`
    :class:`LiveCluster`: an in-process N-peers-plus-RM harness for
    tests and demos.
"""

from repro.runtime.codec import (
    WIRE_VERSION,
    WireFormatError,
    decode_frame,
    encode_ack,
    encode_message,
)
from repro.runtime.transport import (
    PeerDirectory,
    SimTransport,
    Transport,
    UdpTransport,
)
from repro.runtime.node import LiveNode, NodeSpec, SimClockPump
from repro.runtime.bootstrap import BootstrapServer
from repro.runtime.cluster import LiveCluster, LiveClusterConfig

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "decode_frame",
    "encode_ack",
    "encode_message",
    "PeerDirectory",
    "SimTransport",
    "Transport",
    "UdpTransport",
    "LiveNode",
    "NodeSpec",
    "SimClockPump",
    "BootstrapServer",
    "LiveCluster",
    "LiveClusterConfig",
]

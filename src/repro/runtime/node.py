"""A live protocol endpoint: the sim kernel pumped in wall-clock time.

The protocol layer (:class:`~repro.core.peer.Peer`,
:class:`~repro.core.manager.ResourceManager`) is written against the
discrete-event kernel — handler dispatch, profiler loops, RPC timeouts
are all :mod:`repro.sim` processes.  Rather than forking that logic for
the live runtime, each :class:`LiveNode` embeds its *own*
:class:`~repro.sim.core.Environment` and advances it in soft real time
on the asyncio loop (:class:`SimClockPump`): an event scheduled at sim
time *t* fires when the wall clock reaches *t* seconds after node
start.  Sim seconds == wall seconds, so the Profiler's ``LOAD_UPDATE``
heartbeats, the RM's liveness monitor and every protocol timeout run on
real wall-clock timers — through the exact same code paths as the
simulator.

Inbound UDP messages are decoded by the transport and dropped into the
node's ordinary mailbox; the dispatcher process picks them up on the
next pump step.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core import protocol
from repro.core.info_base import PeerRecord
from repro.core.manager import ResourceManager, RMConfig, TaskEventFn
from repro.core.peer import Peer, PeerConfig
from repro.media.objects import MediaObject
from repro.net.message import Message
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.runtime.transport import PeerDirectory, UdpTransport
from repro.telemetry.logs import get_logger


class SimClockPump:
    """Advances a sim :class:`Environment` in wall-clock time.

    Anchors sim time 0 at the loop time of :meth:`run`'s first
    iteration; thereafter steps every event whose scheduled time is due
    and sleeps until the next one (or until :meth:`kick` signals that an
    external source — a received datagram — scheduled new work).
    """

    def __init__(self, env: Environment, max_batch: int = 1000) -> None:
        self.env = env
        self.max_batch = max_batch
        self._wake: Optional[asyncio.Event] = None
        self._stopped = False
        self._anchor = 0.0

    def kick(self) -> None:
        """Wake the pump (new externally-scheduled work)."""
        if self._wake is not None:
            self._wake.set()

    def stop(self) -> None:
        self._stopped = True
        self.kick()

    @property
    def wall_sim_now(self) -> float:
        """The sim time corresponding to the current wall clock."""
        loop = asyncio.get_event_loop()
        return loop.time() - self._anchor

    def run_process(
        self, gen: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> "asyncio.Future[Any]":
        """Start *gen* as a sim process; resolve a future with its result."""
        loop = asyncio.get_event_loop()
        future: asyncio.Future[Any] = loop.create_future()
        proc = self.env.process(gen, name=name)

        def _finish(event: Event) -> None:
            if future.cancelled():
                return
            if event.ok:
                future.set_result(event.value)
            else:
                future.set_exception(event.value)

        proc.callbacks.append(_finish)
        self.kick()
        return future

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._anchor = loop.time() - self.env.now
        while not self._stopped:
            due = loop.time() - self._anchor
            stepped = 0
            while (
                not self._stopped
                and stepped < self.max_batch
                and self.env.peek() <= due
            ):
                self.env.step()
                stepped += 1
            if self._stopped:
                break
            if stepped >= self.max_batch:
                await asyncio.sleep(0)  # yield to I/O, keep draining
                continue
            nxt = self.env.peek()
            if nxt == float("inf"):
                await self._wait(None)
            else:
                delay = (self._anchor + nxt) - loop.time()
                if delay > 0:
                    await self._wait(delay)

    async def _wait(self, timeout: Optional[float]) -> None:
        assert self._wake is not None
        try:
            await asyncio.wait_for(self._wake.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        self._wake.clear()


@dataclass
class NodeSpec:
    """A live node's identity, capabilities, and hosted inventory.

    ``service_edges`` are the resource-graph edges this peer can
    execute, announced at registration so the elected RM can build the
    domain resource graph: dicts with keys ``src``, ``dst`` (states,
    e.g. :class:`~repro.media.formats.MediaFormat`), ``service_id``,
    ``work``, ``out_bytes``, ``edge_id``.
    """

    node_id: str
    power: float = 10.0
    bandwidth: float = 1.25e6
    uptime: float = 1.0
    objects: List[MediaObject] = field(default_factory=list)
    service_edges: List[Dict[str, Any]] = field(default_factory=list)
    profiler_update_period: float = 0.5
    scheduling_policy: str = "LLS"

    def peer_config(self) -> PeerConfig:
        return PeerConfig(
            power=self.power,
            bandwidth=self.bandwidth,
            uptime_score=self.uptime,
            scheduling_policy=self.scheduling_policy,
            profiler_update_period=self.profiler_update_period,
        )


class LiveNode:
    """One middleware process: socket + event kernel + protocol endpoint.

    Lifecycle: :meth:`start` binds the UDP socket, starts the clock
    pump, registers with the bootstrap service, and — once the
    ``JOIN_ACK`` assigns a role — constructs the *ordinary* protocol
    object (a :class:`Peer`, or a :class:`ResourceManager` if this node
    won the §4.1 qualification election).  From then on the node is
    indistinguishable from its simulated twin: same handlers, same
    message kinds, same timeouts.
    """

    def __init__(
        self,
        spec: NodeSpec,
        directory: PeerDirectory,
        bootstrap_id: str = "bootstrap",
        host: str = "127.0.0.1",
        port: int = 0,
        rm_config: Optional[RMConfig] = None,
        allocator: Any = None,
        on_task_event: Optional[TaskEventFn] = None,
        join_timeout: float = 10.0,
        join_extra: Optional[Dict[str, Any]] = None,
        **transport_kwargs: Any,
    ) -> None:
        self.spec = spec
        self.node_id = spec.node_id
        self.bootstrap_id = bootstrap_id
        self.rm_config = rm_config
        self.allocator = allocator
        self.on_task_event = on_task_event
        self.join_timeout = join_timeout
        #: Extra keys merged into the JOIN_REQUEST payload (e.g. the
        #: hosting shard id in the sharded runtime).
        self.join_extra = dict(join_extra or {})
        self.env = Environment()
        self.pump = SimClockPump(self.env)
        self.directory = directory
        self.transport = UdpTransport(
            spec.node_id, directory, self._on_wire_message,
            host=host, port=port, **transport_kwargs,
        )
        #: The protocol endpoint; built once the JOIN_ACK assigns a role.
        self.node: Optional[Peer] = None
        self.role: Optional[str] = None
        self.rm_id: Optional[str] = None
        self.domain_id: Optional[str] = None
        self._joined = asyncio.Event()
        self._join_payload: Optional[Dict[str, Any]] = None
        self._pump_task: Optional[asyncio.Task] = None
        self.log = get_logger("runtime.node", spec.node_id)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "LiveNode":
        """Bind, pump, register, and assume the assigned role."""
        await self.transport.start()
        self.log.info(
            "bound %s:%s, joining via %s",
            self.transport.host, self.transport.port, self.bootstrap_id,
        )
        self._pump_task = asyncio.get_running_loop().create_task(
            self.pump.run(), name=f"pump:{self.node_id}"
        )
        self._pump_task.add_done_callback(self._pump_done)
        # Joining is an application-level retry loop, not a single
        # reliable send: under a mass-join burst the registrar's process
        # can stall longer than the transport's whole retry budget
        # (hundreds of multi-KB JOIN_REQUESTs against a default-sized
        # kernel rcvbuf), and a join lost *there* would strand the node
        # forever.  Re-announcing is idempotent at the agent.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.join_timeout
        retry = min(2.0, max(0.5, self.join_timeout / 10.0))
        while not self._joined.is_set():
            self.transport.send(Message(
                kind=protocol.JOIN_REQUEST,
                src=self.node_id,
                dst=self.bootstrap_id,
                payload=self._join_request_payload(),
                size=protocol.size_of(protocol.JOIN_REQUEST),
            ))
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"{self.node_id}: no JOIN_ACK within "
                    f"{self.join_timeout}s"
                )
            try:
                await asyncio.wait_for(
                    self._joined.wait(), min(retry, remaining)
                )
            except asyncio.TimeoutError:
                continue
        assert self._join_payload is not None
        self._assume_role(self._join_payload)
        return self

    def _pump_done(self, task: "asyncio.Task[None]") -> None:
        """A pump that dies takes the whole protocol endpoint with it —
        that must never pass silently (it once hid an admission bug)."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.log.error("clock pump died: %r", exc)

    def _join_request_payload(self) -> Dict[str, Any]:
        return {
            **self.join_extra,
            "peer_id": self.node_id,
            "host": self.transport.host,
            "port": self.transport.port,
            "power": self.spec.power,
            "bandwidth": self.spec.bandwidth,
            "uptime": self.spec.uptime,
            "objects": list(self.spec.objects),
            "edges": [dict(e) for e in self.spec.service_edges],
        }

    async def leave(self) -> None:
        """Graceful departure: PEER_LEAVE to RM and bootstrap, then down."""
        payload = {"peer_id": self.node_id}
        self.transport.send(Message(
            kind=protocol.PEER_LEAVE, src=self.node_id,
            dst=self.bootstrap_id, payload=payload,
            size=protocol.size_of(protocol.PEER_LEAVE),
        ))
        if self.node is not None and self.node.alive:
            self.node.leave()  # sends PEER_LEAVE to the RM, then fails
        await self.transport.flush()

    async def stop(self) -> None:
        """Tear the node down (no departure protocol — a crash)."""
        self.log.info("stopping")
        self.pump.stop()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except (asyncio.CancelledError, Exception):
                pass
        await self.transport.aclose()

    # -- wiring ------------------------------------------------------------
    def _on_wire_message(self, msg: Message) -> None:
        if self.node is None:
            # Pre-role phase: only the bootstrap handshake is understood.
            if msg.kind == protocol.JOIN_ACK and not self._joined.is_set():
                self._join_payload = msg.payload
                self._joined.set()
            return
        self.node.mailbox.put(msg)
        self.pump.kick()

    def _assume_role(self, ack: Dict[str, Any]) -> None:
        self.role = ack["role"]
        self.rm_id = ack["rm_id"]
        self.domain_id = ack.get("domain_id", "d0")
        roster: Dict[str, Dict[str, Any]] = ack.get("roster", {})
        # Learn every member's address (a shared directory already has
        # them; a per-process one needs this).
        for pid, rec in roster.items():
            if pid != self.node_id and pid not in self.directory:
                self.directory.add(pid, rec["host"], rec["port"])
        if self.role == "rm":
            node = ResourceManager(
                self.env, self.transport, self.node_id, self.domain_id,
                allocator=self.allocator,
                rm_config=self.rm_config,
                peer_config=self.spec.peer_config(),
                on_task_event=self.on_task_event,
            )
            # Membership wiring for the live join protocol: the
            # bootstrap forwards JOIN_REQUESTs here; admission reuses
            # the same roster/info-base paths as the simulator overlay.
            node.on(protocol.JOIN_REQUEST, self._make_rm_join_handler(node))
            for pid, rec in roster.items():
                if pid != self.node_id:
                    self._rm_admit(node, rec)
        else:
            node = Peer(
                self.env, self.transport, self.node_id,
                config=self.spec.peer_config(),
                rm_id=self.rm_id,
            )
        for obj in self.spec.objects:
            node.store_object(obj)
        for edge in self.spec.service_edges:
            node.host_service(edge["service_id"], edge)
        self.node = node
        self.log.info(
            "assumed role %s (rm=%s domain=%s)",
            self.role, self.rm_id, self.domain_id,
        )
        self.pump.kick()

    def _rm_admit(self, rm: ResourceManager, rec: Dict[str, Any]) -> None:
        """Fold one announced member into the RM's information base."""
        if "power" not in rec:
            return  # address-only roster slice (sharded ack); the full
            # capability record arrives via a roster-agent forward
        if rm.info.has_peer(rec["peer_id"]):
            return
        rm.admit_peer(
            PeerRecord(
                peer_id=rec["peer_id"],
                power=rec["power"],
                bandwidth=rec["bandwidth"],
                uptime_score=rec.get("uptime", 1.0),
            ),
            objects={obj.name: obj for obj in rec.get("objects", [])},
        )
        for edge in rec.get("edges", []):
            rm.info.register_service_instance(
                edge["src"], edge["dst"], edge["service_id"],
                rec["peer_id"], edge["work"], edge["out_bytes"],
                edge_id=edge.get("edge_id", ""),
            )

    def _make_rm_join_handler(
        self, rm: ResourceManager
    ) -> Callable[[Message], None]:
        def handle_join(msg: Message) -> None:
            rec = msg.payload
            self.directory.add(rec["peer_id"], rec["host"], rec["port"])
            self._rm_admit(rm, rec)
        return handle_join

    # -- application API ---------------------------------------------------
    def submit_task(
        self,
        name: str,
        goal_state: Any,
        deadline: float,
        importance: float = 1.0,
        timeout: float = 30.0,
    ) -> "asyncio.Future[Message]":
        """Submit a query from this peer; resolves with the TASK_ACK."""
        if self.node is None:
            raise RuntimeError(f"{self.node_id} has not joined yet")
        return self.pump.run_process(
            self.node.submit_task(
                name, goal_state, deadline,
                importance=importance, timeout=timeout,
            ),
            name=f"{self.node_id}:submit:{name}",
        )

    def summary(self) -> Dict[str, Any]:
        return self.transport.summary()

    def health_signal(self) -> Dict[str, Any]:
        """One read-only health snapshot for the wall-clock sampler.

        Called from the sampler's daemon thread, so only plain
        attribute reads — anything mid-mutation is the sampler's
        problem (it swallows probe errors).
        """
        signal: Dict[str, Any] = {
            "node_id": self.node_id,
            "role": self.role,
            "load": None,
            "finished_by_class": {},
            "missed_by_class": {},
        }
        node = self.node
        if node is not None and node.alive:
            profiler = getattr(node, "profiler", None)
            if profiler is not None:
                signal["load"] = profiler.load
            proc = getattr(node, "processor", None)
            if proc is not None:
                signal["finished_by_class"] = dict(proc.completed_by_class)
                signal["missed_by_class"] = dict(proc.missed_by_class)
        return signal

    def __repr__(self) -> str:
        return (
            f"<LiveNode {self.node_id} role={self.role or 'joining'} "
            f"@{self.transport.host}:{self.transport.port}>"
        )

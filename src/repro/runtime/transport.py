"""The pluggable message fabric under the protocol endpoints.

:class:`~repro.net.node.NetNode` (and therefore every peer and RM) only
ever touches its fabric through a narrow surface: ``register``/
``unregister``, ``send``, reachability (``is_up``/``set_down``/
``set_up``) and the planning estimate ``expected_delay``.  The
:class:`Transport` ABC names that surface; the protocol layer runs
unchanged over either implementation:

:class:`SimTransport`
    wraps the discrete-event :class:`~repro.net.network.Network`
    (simulation — the default everywhere else in the repo).
:class:`UdpTransport`
    an asyncio ``DatagramProtocol`` speaking the
    :mod:`repro.runtime.codec` wire format over real localhost sockets,
    with per-message acks, timeout + exponential-backoff retries, and
    duplicate suppression keyed on ``(src, msg_id)``.
"""

from __future__ import annotations

import abc
import asyncio
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

from repro import telemetry
from repro.net.message import Message
from repro.net.network import Network, NetworkStats
from repro.runtime.codec import (
    FRAME_ACK,
    WireFormatError,
    decode_frame,
    encode_ack,
    encode_message,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetNode


class Transport(abc.ABC):
    """Fabric surface the protocol endpoints rely on."""

    stats: NetworkStats

    @abc.abstractmethod
    def register(self, node: "NetNode") -> None:
        """Attach a local endpoint."""

    @abc.abstractmethod
    def unregister(self, node_id: str) -> None:
        """Detach an endpoint (departed peer)."""

    @abc.abstractmethod
    def send(self, msg: Message) -> None:
        """Transmit *msg*; delivery is asynchronous and unreliable."""

    @abc.abstractmethod
    def is_up(self, node_id: str) -> bool:
        """Reachability as far as this transport can tell."""

    @abc.abstractmethod
    def set_down(self, node_id: str) -> None:
        """Mark a node unreachable (crash/disconnect)."""

    @abc.abstractmethod
    def set_up(self, node_id: str) -> None:
        """Restore a node's reachability."""

    @abc.abstractmethod
    def expected_delay(self, src: str, dst: str, size: float = 512.0) -> float:
        """Planning estimate of one-way delay (the RM's cost model)."""

    def summary(self) -> Dict[str, Any]:
        """Traffic counters, comparable between sim and live runs."""
        return self.stats.summary()

    def close(self) -> None:
        """Release any underlying resources (sockets, tasks)."""


class SimTransport(Transport):
    """The simulated fabric behind the :class:`Transport` surface.

    A thin delegate around an existing :class:`Network`; protocol code
    written against :class:`Transport` runs in the simulator through
    this without any behavioural change.
    """

    def __init__(self, network: Network) -> None:
        self.network = network

    @property
    def stats(self) -> NetworkStats:  # type: ignore[override]
        return self.network.stats

    @property
    def env(self):
        return self.network.env

    def register(self, node: "NetNode") -> None:
        self.network.register(node)

    def unregister(self, node_id: str) -> None:
        self.network.unregister(node_id)

    def send(self, msg: Message) -> None:
        self.network.send(msg)

    def is_up(self, node_id: str) -> bool:
        return self.network.is_up(node_id)

    def set_down(self, node_id: str) -> None:
        self.network.set_down(node_id)

    def set_up(self, node_id: str) -> None:
        self.network.set_up(node_id)

    def expected_delay(self, src: str, dst: str, size: float = 512.0) -> float:
        return self.network.expected_delay(src, dst, size)


class PeerDirectory:
    """node id -> UDP address book (the live runtime's name service).

    The bootstrap service fills it as peers register; join
    acknowledgements carry the roster so every node can populate its
    own copy (one process may share a single instance).
    """

    def __init__(self) -> None:
        self._addrs: Dict[str, Tuple[str, int]] = {}

    def add(self, node_id: str, host: str, port: int) -> None:
        self._addrs[node_id] = (host, int(port))

    def remove(self, node_id: str) -> None:
        self._addrs.pop(node_id, None)

    def address(self, node_id: str) -> Optional[Tuple[str, int]]:
        return self._addrs.get(node_id)

    def known(self) -> list[str]:
        return list(self._addrs)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._addrs

    def __len__(self) -> int:
        return len(self._addrs)


#: Called with (message, attempt) before each datagram send; returning
#: True swallows that transmission (packet-loss injection for tests).
DropFn = Callable[[Message, int], bool]


class UdpTransport(Transport, asyncio.DatagramProtocol):
    """One node's live UDP endpoint.

    Reliability: every data frame is acknowledged by the receiving
    transport; the sender retries with exponential backoff until the
    ack arrives or ``max_retries`` is exhausted (then the message is
    *dropped*, mirroring the simulator's datagram semantics — protocol
    layers recover through their own timeouts).  Receivers ack every
    copy (an earlier ack may itself have been lost) but deliver a
    given ``(src, msg_id)`` only once.

    Parameters
    ----------
    node_id:
        The endpoint this socket serves.
    directory:
        Address book used to resolve destinations.
    on_message:
        Callback invoked (on the event loop) with each delivered
        :class:`Message`.
    host, port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    ack_timeout, backoff, max_retries:
        First-attempt ack wait, multiplicative backoff factor, and the
        number of *re*-transmissions after the initial send.
    est_latency, est_bandwidth:
        Constants behind :meth:`expected_delay` (allocator cost model).
    dedup_capacity:
        How many ``(src, msg_id)`` keys the duplicate filter remembers.
    drop_fn:
        Optional outbound packet-loss shim for tests.
    """

    def __init__(
        self,
        node_id: str,
        directory: PeerDirectory,
        on_message: Callable[[Message], None],
        host: str = "127.0.0.1",
        port: int = 0,
        ack_timeout: float = 0.05,
        backoff: float = 2.0,
        max_retries: int = 6,
        est_latency: float = 0.001,
        est_bandwidth: float = 1.25e7,
        dedup_capacity: int = 8192,
        drop_fn: Optional[DropFn] = None,
        rcvbuf: int = 1 << 20,
    ) -> None:
        if ack_timeout <= 0 or backoff < 1.0 or max_retries < 0:
            raise ValueError("bad reliability parameters")
        self.node_id = node_id
        self.directory = directory
        self.on_message = on_message
        self.host = host
        self.port = port
        self.ack_timeout = ack_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        self.est_latency = est_latency
        self.est_bandwidth = est_bandwidth
        self.drop_fn = drop_fn
        self.rcvbuf = rcvbuf
        self.stats = NetworkStats()
        self._node: Optional["NetNode"] = None
        self._down: Set[str] = set()
        self._seen: OrderedDict[Tuple[str, int], None] = OrderedDict()
        self._dedup_capacity = dedup_capacity
        self._pending_acks: Dict[Tuple[str, int], asyncio.Event] = {}
        self._send_tasks: Set[asyncio.Task] = set()
        self._sock: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # -- reliability counters (live in the shared NetworkStats so sim and
    # live summaries share one schema; kept as properties for callers
    # that read them off the transport directly) ---------------------------
    @property
    def retransmits(self) -> int:
        return self.stats.retransmits

    @property
    def duplicates(self) -> int:
        return self.stats.duplicates

    @property
    def malformed(self) -> int:
        return self.stats.malformed

    @property
    def acks_sent(self) -> int:
        return self.stats.acks_sent

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "UdpTransport":
        """Bind the socket and publish this endpoint in the directory."""
        self._loop = asyncio.get_running_loop()
        sock, _ = await self._loop.create_datagram_endpoint(
            lambda: self, local_addr=(self.host, self.port)
        )
        self._sock = sock
        raw = sock.get_extra_info("socket")
        if raw is not None and self.rcvbuf:
            import socket as _socket
            try:
                # Best effort: the kernel clamps to rmem_max.  A mass
                # join aims hundreds of datagrams at one registrar
                # socket faster than its event loop drains them; the
                # default buffer overflows long before the retry budget.
                raw.setsockopt(
                    _socket.SOL_SOCKET, _socket.SO_RCVBUF, self.rcvbuf
                )
            except OSError:
                pass
        self.host, self.port = sock.get_extra_info("sockname")[:2]
        self.directory.add(self.node_id, self.host, self.port)
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task in list(self._send_tasks):
            task.cancel()
        if self._sock is not None:
            self._sock.close()

    async def aclose(self) -> None:
        """Close and *reap*: await every cancelled retry task.

        ``close()`` alone only requests cancellation; the tasks need a
        loop cycle to unwind, and a loop that shuts down first logs
        "Task was destroyed but it is pending!" and leaks the ack
        waiters.  After this returns, ``_send_tasks`` is empty.
        """
        self.close()
        pending = [t for t in self._send_tasks if not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._send_tasks.clear()
        self._pending_acks.clear()

    async def flush(self, timeout: float = 1.0) -> None:
        """Wait for in-flight reliable sends (graceful departure).

        Sends still pending when *timeout* expires are cancelled — a
        straggler mid-backoff must not outlive the departure that
        called this (their messages count as dropped, datagram-style).
        """
        pending = [t for t in self._send_tasks if not t.done()]
        if not pending:
            return
        await asyncio.wait(pending, timeout=timeout)
        stragglers = [t for t in pending if not t.done()]
        for task in stragglers:
            task.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)

    # -- Transport surface -------------------------------------------------
    def register(self, node: "NetNode") -> None:
        if self._node is not None:
            raise ValueError(
                f"transport {self.node_id} already hosts {self._node.node_id}"
            )
        if node.node_id != self.node_id:
            raise ValueError(
                f"endpoint {self.node_id} cannot host node {node.node_id}"
            )
        self._node = node

    def unregister(self, node_id: str) -> None:
        if self._node is not None and self._node.node_id == node_id:
            self._node = None
        self._down.discard(node_id)

    def is_up(self, node_id: str) -> bool:
        if node_id in self._down:
            return False
        return node_id == self.node_id or node_id in self.directory

    def set_down(self, node_id: str) -> None:
        self._down.add(node_id)

    def set_up(self, node_id: str) -> None:
        self._down.discard(node_id)

    def expected_delay(self, src: str, dst: str, size: float = 512.0) -> float:
        return self.est_latency + size / self.est_bandwidth

    def send(self, msg: Message) -> None:
        """Queue *msg* for reliable transmission (fire-and-forget API)."""
        msg.ensure_trace_id()
        self.stats.note_send(msg)
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.start_span(
                msg.kind, kind=telemetry.MESSAGE, node=msg.src,
                trace_id=msg.trace_id, key=f"msg:{msg.msg_id}",
                dst=msg.dst, msg_id=msg.msg_id, size=msg.size,
            )
            tel.metrics.counter("repro_net_messages_sent_total").inc()
            tel.metrics.counter(
                "repro_net_message_bytes_total", kind=msg.kind
            ).inc(msg.size)
        if self._closed or not self.is_up(msg.src):
            self._note_dropped(msg)
            return
        if msg.dst == self.node_id:
            # Loopback: no socket hop, but same delivery path.
            self._note_delivered(msg)
            self.on_message(msg)
            return
        if msg.dst not in self.directory:
            self._note_dropped(msg)
            return
        assert self._loop is not None, "transport not started"
        task = self._loop.create_task(self._send_reliable(msg))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def _note_dropped(self, msg: Message) -> None:
        self.stats.dropped += 1
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.end_span_key(f"msg:{msg.msg_id}", status="dropped")
            tel.metrics.counter("repro_net_messages_dropped_total").inc()

    def _note_delivered(self, msg: Message) -> None:
        self.stats.delivered += 1
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.end_span_key(f"msg:{msg.msg_id}", status="ok")
            tel.metrics.counter("repro_net_messages_delivered_total").inc()

    # -- reliability -------------------------------------------------------
    async def _send_reliable(self, msg: Message) -> None:
        frame = encode_message(msg)
        key = (msg.dst, msg.msg_id)
        waiter = asyncio.Event()
        self._pending_acks[key] = waiter
        timeout = self.ack_timeout
        acked = False
        try:
            for attempt in range(self.max_retries + 1):
                addr = self.directory.address(msg.dst)
                if addr is None:
                    break
                if attempt > 0:
                    self.stats.retransmits += 1
                    tel = telemetry.current()
                    if tel.enabled:
                        tel.metrics.counter(
                            "repro_udp_retransmits_total"
                        ).inc()
                        # Flight-recorder trigger: retry storms.
                        tel.tracer.event(
                            "udp.retry", node=self.node_id,
                            dst=msg.dst, attempt=attempt,
                        )
                lost = self.drop_fn is not None and self.drop_fn(msg, attempt)
                if not lost and self._sock is not None:
                    self._sock.sendto(frame, addr)
                try:
                    await asyncio.wait_for(waiter.wait(), timeout)
                    acked = True
                    break
                except asyncio.TimeoutError:
                    timeout *= self.backoff
        finally:
            self._pending_acks.pop(key, None)
            if not acked:
                self._note_dropped(msg)

    # -- DatagramProtocol --------------------------------------------------
    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        tel = telemetry.current()
        try:
            frame = decode_frame(data)
        except WireFormatError:
            self.stats.malformed += 1
            if tel.enabled:
                tel.metrics.counter("repro_udp_malformed_total").inc()
            return
        if frame["t"] == FRAME_ACK:
            waiter = self._pending_acks.get((frame["src"], frame["id"]))
            if waiter is not None:
                waiter.set()
            return
        msg: Message = frame["msg"]
        # Ack every copy: the previous ack may have been the lost packet.
        if self._sock is not None and not self._closed:
            self._sock.sendto(encode_ack(self.node_id, msg.msg_id), addr)
            self.stats.acks_sent += 1
            if tel.enabled:
                tel.metrics.counter("repro_udp_acks_sent_total").inc()
        if self.node_id in self._down or self._closed:
            return  # locally "crashed": receive nothing
        key = (msg.src, msg.msg_id)
        if key in self._seen:
            self.stats.duplicates += 1
            if tel.enabled:
                tel.metrics.counter("repro_udp_duplicates_total").inc()
            return
        self._seen[key] = None
        if len(self._seen) > self._dedup_capacity:
            self._seen.popitem(last=False)
        # Learn the sender's address from the wire: a respawned process
        # keeps its node ids but binds fresh ports, and replies routed
        # through a stale directory entry would go to the dead socket.
        if self.directory.address(msg.src) != addr:
            self.directory.add(msg.src, addr[0], addr[1])
        self._note_delivered(msg)
        self.on_message(msg)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        pass  # ICMP errors: treat like loss; retries cover it

    def __repr__(self) -> str:
        return (
            f"<UdpTransport {self.node_id} {self.host}:{self.port} "
            f"sent={self.stats.sent} delivered={self.stats.delivered}>"
        )

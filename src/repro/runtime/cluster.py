"""An in-process live domain: N peers + 1 elected RM over localhost UDP.

:class:`LiveCluster` is the harness tests and demos build on.  It
spawns a :class:`~repro.runtime.bootstrap.BootstrapServer` plus one
:class:`~repro.runtime.node.LiveNode` per spec on a single asyncio
loop, waits for registration + RM election, and exposes an async
application API (submit a task, await its completion, read per-node
traffic summaries).

The default population is the paper's Figure-1 worked example: peers
``P1..P4`` hosting the eight transcoding edges (``P1`` stores the
``movie`` source object) plus a well-provisioned candidate ``M0`` that
wins the §4.1 qualification election — 1 RM + 4 peers.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.manager import RMConfig
from repro.media.fig1 import build_fig1_graph
from repro.media.objects import MediaObject
from repro.runtime.bootstrap import BOOTSTRAP_ID, BootstrapServer
from repro.runtime.node import LiveNode, NodeSpec
from repro.runtime.transport import PeerDirectory
from repro.tasks.task import ApplicationTask


@dataclass
class LiveClusterConfig:
    """Knobs for the in-process live domain."""

    n_peers: int = 4
    host: str = "127.0.0.1"
    domain_id: str = "d0"
    #: Duration of the demo media object; work scales with it (the
    #: Fig-1 edges are calibrated for 60 s), so short objects keep live
    #: runs wall-clock fast.
    object_duration_s: float = 3.0
    profiler_update_period: float = 0.5
    peer_power: float = 10.0
    peer_bandwidth: float = 1.25e6
    peer_uptime: float = 0.9
    rm_candidate_id: str = "M0"
    rm_power: float = 50.0
    rm_bandwidth: float = 1.0e7
    rm_uptime: float = 1.0
    join_timeout: float = 10.0
    #: Placement policy name the elected RM runs (registry name;
    #: overrides ``rm_config.placement_policy`` when non-default).
    placement_policy: str = "paper"
    #: Reputation-gated load reports on the elected RM (``--defense``).
    enable_defense: bool = False
    rm_config: Optional[RMConfig] = None
    #: Extra kwargs forwarded to every UdpTransport (test shims).
    transport_kwargs: Dict[str, Any] = field(default_factory=dict)


def fig1_specs(cfg: LiveClusterConfig) -> List[NodeSpec]:
    """Node specs for the Figure-1 domain (+ the RM candidate)."""
    scenario = build_fig1_graph(duration_s=60.0)  # canonical calibration
    edges_by_peer: Dict[str, List[Dict[str, Any]]] = {}
    for e in scenario.graph.edges():
        edges_by_peer.setdefault(e.peer_id, []).append({
            "src": e.src, "dst": e.dst, "service_id": e.service_id,
            "work": e.work, "out_bytes": e.out_bytes, "edge_id": e.edge_id,
        })
    movie = MediaObject(
        "movie", scenario.source_object.fmt,
        duration_s=cfg.object_duration_s,
    )
    specs: List[NodeSpec] = [
        NodeSpec(
            node_id=cfg.rm_candidate_id,
            power=cfg.rm_power,
            bandwidth=cfg.rm_bandwidth,
            uptime=cfg.rm_uptime,
            profiler_update_period=cfg.profiler_update_period,
        )
    ]
    peer_ids = scenario.peers[: cfg.n_peers]
    for i in range(len(peer_ids), cfg.n_peers):
        peer_ids.append(f"P{i + 1}")
    for pid in peer_ids:
        specs.append(NodeSpec(
            node_id=pid,
            power=cfg.peer_power,
            bandwidth=cfg.peer_bandwidth,
            uptime=cfg.peer_uptime,
            objects=[movie] if pid == "P1" else [],
            service_edges=edges_by_peer.get(pid, []),
            profiler_update_period=cfg.profiler_update_period,
        ))
    return specs


class LiveCluster:
    """1 bootstrap + N live nodes on one asyncio loop."""

    def __init__(
        self,
        config: Optional[LiveClusterConfig] = None,
        specs: Optional[List[NodeSpec]] = None,
    ) -> None:
        self.config = config or LiveClusterConfig()
        self.specs = specs if specs is not None else fig1_specs(self.config)
        self.directory = PeerDirectory()
        self.bootstrap: Optional[BootstrapServer] = None
        self.nodes: Dict[str, LiveNode] = {}
        #: (wall-ish sim time, task_id, event) in arrival order.
        self.task_events: List[Tuple[float, str, str]] = []
        #: Fired (task_id, event) keys, LRU-bounded so a long soak's
        #: event history cannot grow without limit.
        self._fired: OrderedDict[Tuple[str, str], None] = OrderedDict()
        self._fired_capacity = 4096
        self._watchers: Dict[Tuple[str, str], asyncio.Event] = {}
        #: The Figure-1 goal format, handy for demos/tests.
        self.default_goal = build_fig1_graph().v_sol
        #: Wall-clock health sampler, if started (see
        #: :meth:`start_health_sampler`).
        self.sampler = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "LiveCluster":
        cfg = self.config
        rm_config = cfg.rm_config or RMConfig(
            expected_update_period=cfg.profiler_update_period,
        )
        if cfg.placement_policy != "paper":
            rm_config.placement_policy = cfg.placement_policy
        if cfg.enable_defense:
            rm_config.enable_defense = True
        self.bootstrap = BootstrapServer(
            self.directory,
            expected_peers=len(self.specs),
            domain_id=cfg.domain_id,
            host=cfg.host,
            **cfg.transport_kwargs,
        )
        await self.bootstrap.start()
        for spec in self.specs:
            self.nodes[spec.node_id] = LiveNode(
                spec, self.directory,
                bootstrap_id=BOOTSTRAP_ID,
                host=cfg.host,
                rm_config=rm_config,
                on_task_event=self._on_task_event,
                join_timeout=cfg.join_timeout,
                **cfg.transport_kwargs,
            )
        await asyncio.gather(*(n.start() for n in self.nodes.values()))
        return self

    async def stop(self) -> None:
        if self.sampler is not None:
            self.sampler.stop_wall()
            self.sampler = None
        await asyncio.gather(
            *(n.stop() for n in self.nodes.values()),
            return_exceptions=True,
        )
        if self.bootstrap is not None:
            await self.bootstrap.transport.aclose()

    async def __aenter__(self) -> "LiveCluster":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- membership --------------------------------------------------------
    @property
    def rm_node(self) -> LiveNode:
        for node in self.nodes.values():
            if node.role == "rm":
                return node
        raise RuntimeError("no RM elected yet")

    def peers(self) -> List[LiveNode]:
        return [n for n in self.nodes.values() if n.role == "peer"]

    async def add_peer(self, spec: NodeSpec) -> LiveNode:
        """Late join: register a new peer with the running domain."""
        node = LiveNode(
            spec, self.directory,
            bootstrap_id=BOOTSTRAP_ID,
            host=self.config.host,
            join_timeout=self.config.join_timeout,
            **self.config.transport_kwargs,
        )
        self.nodes[spec.node_id] = node
        await node.start()
        return node

    async def remove_peer(self, node_id: str) -> None:
        """Graceful departure of one peer."""
        node = self.nodes.pop(node_id)
        await node.leave()
        await node.stop()
        self._gc_watchers()

    # -- application API ---------------------------------------------------
    async def submit(
        self,
        origin: str,
        name: str = "movie",
        goal: Any = None,
        deadline: float = 20.0,
        importance: float = 1.0,
        timeout: float = 15.0,
    ) -> Dict[str, Any]:
        """Submit a task from *origin*; returns the TASK_ACK payload."""
        node = self.nodes[origin]
        ack = await node.submit_task(
            name, goal if goal is not None else self.default_goal,
            deadline, importance=importance, timeout=timeout,
        )
        return ack.payload

    def _on_task_event(self, task: ApplicationTask, event: str) -> None:
        now = task.finished_at if task.finished_at is not None else 0.0
        self.task_events.append((now, task.task_id, event))
        key = (task.task_id, event)
        self._fired[key] = None
        while len(self._fired) > self._fired_capacity:
            self._fired.popitem(last=False)
        # Fire-and-forget the watcher: waiters hold their own reference,
        # so the entry can go immediately (it used to accumulate one
        # Event per (task, event) forever).
        watcher = self._watchers.pop(key, None)
        if watcher is not None:
            watcher.set()

    def _gc_watchers(self) -> None:
        """Drop watcher entries that already fired (node unregister)."""
        for key in [k for k, ev in self._watchers.items() if ev.is_set()]:
            self._watchers.pop(key, None)

    async def wait_task_event(
        self, task_id: str, event: str = "completed", timeout: float = 10.0
    ) -> None:
        """Block until the RM emits *event* for *task_id*."""
        key = (task_id, event)
        if key in self._fired:
            return
        watcher = self._watchers.setdefault(key, asyncio.Event())
        try:
            await asyncio.wait_for(watcher.wait(), timeout)
        finally:
            # A timed-out wait must not strand its Event in the map.
            if self._watchers.get(key) is watcher and not watcher.is_set():
                self._watchers.pop(key, None)

    def task(self, task_id: str) -> ApplicationTask:
        rm = self.rm_node.node
        assert rm is not None
        return rm.tasks[task_id]  # type: ignore[attr-defined]

    # -- observability -----------------------------------------------------
    def start_health_sampler(self, tel, period: float = 1.0):
        """Start the wall-clock health sampler over this cluster.

        Probes run on a daemon thread (reads only; the sampler swallows
        mid-mutation races) and the series ride into any trace exported
        with ``sampler=``.  Stopped automatically by :meth:`stop`.
        """
        from repro.telemetry.timeseries import (
            HealthSampler, live_cluster_probes,
        )

        sampler = HealthSampler(tel, period=period)
        for probe in live_cluster_probes(self):
            sampler.add_probe(probe)
        sampler.start_wall()
        self.sampler = sampler
        return sampler

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Per-node traffic summaries (plus the bootstrap's)."""
        out = {nid: n.summary() for nid, n in self.nodes.items()}
        if self.bootstrap is not None:
            out[self.bootstrap.node_id] = self.bootstrap.transport.summary()
        return out

    def aggregate_summary(self) -> Dict[str, Any]:
        """Cluster-wide counters, shaped like one NetworkStats.summary()."""
        total: Dict[str, Any] = {
            "sent": 0, "delivered": 0, "dropped": 0, "partition_drops": 0,
            "bytes_sent": 0.0,
            "by_kind": {},
            "retransmits": 0, "duplicates": 0, "malformed": 0,
            "acks_sent": 0,
        }
        for s in self.summaries().values():
            for key in (
                "sent", "delivered", "dropped", "partition_drops",
                "bytes_sent",
                "retransmits", "duplicates", "malformed", "acks_sent",
            ):
                total[key] += s.get(key, 0)
            for kind, n in s["by_kind"].items():
                total["by_kind"][kind] = total["by_kind"].get(kind, 0) + n
        return total

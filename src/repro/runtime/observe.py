"""Supervisor-side observability: cluster health rollup + correlated
flight bundles.

The per-shard observability stack (tracer, HealthSampler, SLO burn
monitor, flight recorder) judges everything on one process's partial
view.  This module is the parent-process half of the cluster
observability plane:

* :class:`ClusterHealth` — folds the per-shard health payloads riding
  the heartbeat pipe into *cluster-wide* series on a supervisor-owned
  :class:`~repro.telemetry.timeseries.HealthSampler` (same family
  names the stock SLOs watch, labelled ``scope=cluster``), and runs a
  :class:`~repro.profiling.slo.BurnRateMonitor` over them — so miss
  rate, redirect rate and load imbalance are judged on the merged
  population, not each shard's slice.
* :class:`BundleCoordinator` — turns any one shard's flight-recorder
  dump (or a cluster-level SLO burn) into a *correlated* bundle: it
  fans a snapshot request out to every shard and collects the per-shard
  dumps into one reason-keyed directory with a manifest.  It is
  duck-typed on the recorder's ``trigger(reason, now=None, key=None)``
  surface so the cluster burn monitor can use it as its dump sink.

Both live in the supervisor process and touch shards only through the
control pipe, so shard-side behaviour without ``observe`` enabled is
byte-identical to before.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.profiling.slo import DEFAULT_SLOS, SLO, BurnRateMonitor
from repro.telemetry.logs import get_logger
from repro.telemetry.timeseries import HealthSampler, _RateTracker

#: Minimum seconds between cluster-series ticks (heartbeats from N
#: shards would otherwise tick N times per period).
DEFAULT_TICK_INTERVAL = 0.5


class ClusterHealth:
    """Cluster-wide health series + SLO burn over shard heartbeats.

    Shards attach a ``health`` payload to each heartbeat::

        {"loads": {"n": 12, "sum": 4.2, "max": 0.9},
         "finished": {"normal": 30}, "missed": {"normal": 1},
         "rm": {"admitted": 31, "rejected": 0, "redirected_out": 2},
         "inflight": 3}

    :meth:`ingest` stores the latest payload per shard;
    :meth:`maybe_tick` (rate-limited) folds the stored payloads into
    cluster aggregates — load mean over *all* peers, max/mean imbalance
    over the merged vector's peak, per-QoS miss ratio over summed
    counters, RM rates over summed cumulative totals — and evaluates
    the burn monitor over the merged series.
    """

    def __init__(
        self,
        tel=None,
        slos: Tuple[SLO, ...] = DEFAULT_SLOS,
        recorder=None,
        tick_interval: float = DEFAULT_TICK_INTERVAL,
        slo_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        # A private (non-activated) wall handle: the supervisor process
        # has no telemetry of its own and must not flip the global
        # enabled flag.
        self.tel = tel or telemetry.Telemetry.wall()
        self.sampler = HealthSampler(self.tel)
        self.monitor = BurnRateMonitor(
            self.sampler, slos=slos, tel=self.tel, recorder=recorder,
            **(slo_kwargs or {}),
        )
        self.tick_interval = float(tick_interval)
        self._rm_rates = _RateTracker()
        #: shard_id -> latest health payload.
        self._latest: Dict[str, Dict[str, Any]] = {}
        self._last_tick: Optional[float] = None
        self.n_ticks = 0

    # -- ingestion -----------------------------------------------------------
    def ingest(self, shard_id: str, health: Dict[str, Any]) -> None:
        self._latest[shard_id] = health

    def maybe_tick(self, now: Optional[float] = None) -> bool:
        if now is None:
            now = self.tel.clock.now()
        if (
            self._last_tick is not None
            and now - self._last_tick < self.tick_interval
        ):
            return False
        self.tick(now)
        return True

    def tick(self, now: Optional[float] = None) -> None:
        """Fold the stored shard payloads into one cluster sample."""
        if now is None:
            now = self.tel.clock.now()
        self._last_tick = now
        self.n_ticks += 1
        s = self.sampler
        s._now = now  # every observe() below stamps at this tick

        n = 0
        load_sum = 0.0
        load_max = 0.0
        finished: Dict[str, float] = {}
        missed: Dict[str, float] = {}
        rm_totals = {"admitted": 0.0, "rejected": 0.0,
                     "redirected_out": 0.0}
        for sid in sorted(self._latest):
            h = self._latest[sid]
            loads = h.get("loads") or {}
            sn = int(loads.get("n", 0))
            ssum = float(loads.get("sum", 0.0))
            smax = float(loads.get("max", 0.0))
            n += sn
            load_sum += ssum
            load_max = max(load_max, smax)
            s_mean = ssum / sn if sn else 0.0
            s.observe("repro_shard_load_mean", s_mean, shard=sid)
            s.observe("repro_shard_load_max", smax, shard=sid)
            s.observe(
                "repro_shard_imbalance",
                smax / s_mean if s_mean > 0 else 1.0,
                shard=sid,
            )
            s.observe(
                "repro_shard_tasks_inflight",
                float(h.get("inflight", 0)), shard=sid,
            )
            for cls, v in (h.get("finished") or {}).items():
                finished[cls] = finished.get(cls, 0.0) + v
            for cls, v in (h.get("missed") or {}).items():
                missed[cls] = missed.get(cls, 0.0) + v
            for key, v in (h.get("rm") or {}).items():
                if key in rm_totals:
                    rm_totals[key] += float(v)

        mean = load_sum / n if n else 0.0
        # Peak-over-mean of the *merged* load vector: per-shard maxima
        # are exact order statistics, so the cluster max is too.
        imbalance = load_max / mean if mean > 0 else 1.0
        s.observe("repro_load_mean", mean, scope="cluster")
        s.observe("repro_load_imbalance", imbalance, scope="cluster")
        for cls in sorted(finished) or ["normal"]:
            done = finished.get(cls, 0.0)
            ratio = missed.get(cls, 0.0) / done if done else 0.0
            s.observe(
                "repro_sched_miss_ratio", ratio, qos=cls, scope="cluster"
            )
        rates = self._rm_rates.rates(now, rm_totals)
        s.observe(
            "repro_rm_admission_rate", rates["admitted"], scope="cluster"
        )
        s.observe(
            "repro_rm_reject_rate", rates["rejected"], scope="cluster"
        )
        s.observe(
            "repro_rm_redirect_rate", rates["redirected_out"],
            scope="cluster",
        )
        s.n_samples += 1
        self.monitor.evaluate(now)

    # -- exports -------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """JSONL-ready ``series`` records of every cluster/shard ring."""
        return self.sampler.records()

    def prometheus_lines(self) -> List[str]:
        """Cluster-rollup gauges for the supervisor's /metrics."""
        out: List[str] = []

        def gauge(name: str, help_text: str, rings) -> None:
            rows = [
                (ring.labels, ring.last)
                for ring in rings if ring.last is not None
            ]
            if not rows:
                return
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} gauge")
            for labels, last in rows:
                if labels:
                    lbl = ",".join(
                        f'{k}="{v}"' for k, v in sorted(labels.items())
                    )
                    out.append(f"{name}{{{lbl}}} {round(last, 6)}")
                else:
                    out.append(f"{name} {round(last, 6)}")

        fam = self.sampler.series_family
        gauge(
            "repro_cluster_load_mean",
            "Mean peer load over the merged population",
            fam("repro_load_mean"),
        )
        gauge(
            "repro_cluster_load_imbalance",
            "Max/mean load imbalance over the merged population",
            fam("repro_load_imbalance"),
        )
        gauge(
            "repro_cluster_miss_ratio",
            "Cluster-wide deadline-miss ratio per QoS class",
            fam("repro_sched_miss_ratio"),
        )
        gauge(
            "repro_cluster_slo_burn_rate",
            "Cluster-level error-budget burn rate per SLO window",
            fam("repro_slo_burn_rate"),
        )
        return out


class BundleCoordinator:
    """Correlates per-shard flight dumps into one bundle per trigger.

    One anomaly, one artifact: on a trigger — either a shard reporting
    its own flight-recorder dump (:meth:`on_shard_dump`) or a
    cluster-level detector calling :meth:`trigger` — the coordinator
    opens ``<out_dir>/<NNN>-<reason>/``, asks every (other) shard for a
    snapshot via *fanout*, and lands each shard's dump in the bundle as
    ``<shard>.jsonl`` next to a ``manifest.json``.  A per-key cooldown
    coalesces sustained anomalies, mirroring the recorder's own
    semantics (so it can serve as the cluster burn monitor's recorder).
    """

    def __init__(
        self,
        out_dir: str,
        fanout: Callable[[str, int, Optional[str]], None],
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.out_dir = out_dir
        self._fanout = fanout
        self.cooldown = float(cooldown)
        self._clock = clock
        self._last: Dict[str, float] = {}
        #: Bundles begun, in order: {"n", "reason", "source", "dir",
        #: "shards": {sid: filename}}.
        self.bundles: List[Dict[str, Any]] = []
        self.skipped: Dict[str, int] = {}
        self.log = get_logger("runtime.observe")

    # -- triggering ----------------------------------------------------------
    def trigger(
        self,
        reason: str,
        now: Optional[float] = None,
        key: Optional[str] = None,
    ) -> Optional[str]:
        """Supervisor-initiated bundle (duck-typed recorder surface).

        Returns the bundle directory, or None while cooling down.
        """
        return self._begin(reason, source="supervisor", key=key)

    def on_shard_dump(self, shard_id: str, reason: str,
                      path: Optional[str]) -> Optional[str]:
        """A shard's own recorder fired: correlate its peers.

        The triggering shard's dump is adopted into the bundle
        directly; the snapshot fan-out excludes it (a second dump
        milliseconds later would only duplicate the first).
        """
        bundle_dir = self._begin(reason, source=shard_id, exclude=shard_id)
        if bundle_dir is not None and path:
            self._adopt(self.bundles[-1], shard_id, path)
        return bundle_dir

    def _begin(
        self,
        reason: str,
        source: str,
        key: Optional[str] = None,
        exclude: Optional[str] = None,
    ) -> Optional[str]:
        now = self._clock()
        k = key or reason
        last = self._last.get(k)
        if last is not None and now - last < self.cooldown:
            self.skipped[reason] = self.skipped.get(reason, 0) + 1
            return None
        self._last[k] = now
        n = len(self.bundles)
        bundle_dir = os.path.join(self.out_dir, f"{n:03d}-{reason}")
        os.makedirs(bundle_dir, exist_ok=True)
        bundle = {
            "n": n, "reason": reason, "source": source,
            "time_unix": round(time.time(), 3),
            "dir": bundle_dir, "shards": {},
        }
        self.bundles.append(bundle)
        self._write_manifest(bundle)
        self.log.info(
            "correlated bundle %03d (%s, source=%s)", n, reason, source
        )
        self._fanout(reason, n, exclude)
        return bundle_dir

    # -- collection ----------------------------------------------------------
    def on_snapshot_done(
        self,
        shard_id: str,
        reason: str,
        bundle_n: Optional[int],
        path: Optional[str],
    ) -> None:
        if bundle_n is None or not (0 <= bundle_n < len(self.bundles)):
            return
        if path:
            self._adopt(self.bundles[bundle_n], shard_id, path)

    def _adopt(self, bundle: Dict[str, Any], shard_id: str,
               path: str) -> None:
        dest = os.path.join(bundle["dir"], f"{shard_id}.jsonl")
        try:
            shutil.copyfile(path, dest)
        except OSError:
            return
        bundle["shards"][shard_id] = os.path.basename(dest)
        self._write_manifest(bundle)

    def _write_manifest(self, bundle: Dict[str, Any]) -> None:
        manifest = {k: v for k, v in bundle.items() if k != "dir"}
        try:
            with open(
                os.path.join(bundle["dir"], "manifest.json"),
                "w", encoding="utf-8",
            ) as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError:
            pass

    def record(self) -> List[Dict[str, Any]]:
        """JSON-ready summary of the bundles (soak result document)."""
        return [
            {
                "n": b["n"], "reason": b["reason"], "source": b["source"],
                "dir": b["dir"], "shards": sorted(b["shards"]),
            }
            for b in self.bundles
        ]

    def __repr__(self) -> str:
        return f"<BundleCoordinator bundles={len(self.bundles)}>"

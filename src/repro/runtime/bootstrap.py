"""The live domain's registration service (Socket-Project-style manager).

A well-known UDP endpoint that seeds a domain: peers register with
``JOIN_REQUEST`` (capabilities + hosted objects/service edges); once
``expected_peers`` have registered, the server runs the §4.1 RM
qualification election (:class:`~repro.overlay.qualification.
QualificationPolicy`) over the announced ``(power, bandwidth, uptime)``
triples and acknowledges every member with its role, the elected RM,
and the full roster.  Late joiners get an immediate ``JOIN_ACK`` and
are forwarded to the RM so it admits them into the domain information
base.  Graceful ``PEER_LEAVE`` prunes the roster and the address
directory.

The server speaks the same reliable-datagram transport as the nodes —
it is *not* a protocol endpoint (no event kernel, no Profiler): pure
membership plumbing, like the paper's out-of-band "initial domain
formation" step.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro import telemetry
from repro.core import protocol
from repro.net.message import Message
from repro.overlay.qualification import QualificationPolicy
from repro.runtime.transport import PeerDirectory, UdpTransport

#: Default well-known identity of the bootstrap endpoint.
BOOTSTRAP_ID = "bootstrap"


class BootstrapServer:
    """Domain seeding, RM election, and membership bookkeeping."""

    def __init__(
        self,
        directory: PeerDirectory,
        expected_peers: int,
        node_id: str = BOOTSTRAP_ID,
        domain_id: str = "d0",
        policy: Optional[QualificationPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **transport_kwargs: Any,
    ) -> None:
        if expected_peers < 2:
            raise ValueError("a domain needs at least an RM and one peer")
        self.node_id = node_id
        self.domain_id = domain_id
        self.expected_peers = expected_peers
        self.policy = policy or QualificationPolicy()
        self.directory = directory
        self.transport = UdpTransport(
            node_id, directory, self._handle, host=host, port=port,
            **transport_kwargs,
        )
        #: peer id -> announced JOIN_REQUEST payload.
        self.members: Dict[str, Dict[str, Any]] = {}
        self.rm_id: Optional[str] = None
        self.departures = 0

    async def start(self) -> "BootstrapServer":
        await self.transport.start()
        return self

    def close(self) -> None:
        self.transport.close()

    @property
    def elected(self) -> bool:
        return self.rm_id is not None

    # -- message handling --------------------------------------------------
    def _handle(self, msg: Message) -> None:
        if msg.kind == protocol.JOIN_REQUEST:
            self._handle_join(msg)
        elif msg.kind == protocol.PEER_LEAVE:
            self._handle_leave(msg)
        # anything else: dropped, datagram-style

    def _handle_join(self, msg: Message) -> None:
        rec = msg.payload
        pid = rec.get("peer_id", msg.src)
        self.members[pid] = rec
        self.directory.add(pid, rec["host"], rec["port"])
        if self.elected:
            # Late joiner: immediate ack + hand the record to the RM.
            self._ack(pid, role="peer")
            if self.rm_id in self.directory:
                self.transport.send(Message(
                    kind=protocol.JOIN_REQUEST, src=self.node_id,
                    dst=self.rm_id, payload=dict(rec),
                    size=protocol.size_of(protocol.JOIN_REQUEST),
                ))
            return
        if len(self.members) >= self.expected_peers:
            self._elect_and_seed()

    def _handle_leave(self, msg: Message) -> None:
        pid = msg.payload.get("peer_id", msg.src)
        if self.members.pop(pid, None) is not None:
            self.departures += 1
        self.directory.remove(pid)

    # -- election ----------------------------------------------------------
    def _elect_and_seed(self) -> None:
        """Rank candidates (§4.1) and acknowledge the whole domain."""
        candidates = [
            (pid, rec["power"], rec["bandwidth"], rec.get("uptime", 1.0))
            for pid, rec in self.members.items()
        ]
        eligible = self.policy.rank(candidates)
        if eligible:
            self.rm_id = eligible[0]
        else:
            # Nobody clears the §4.1 minimums: seed with the most
            # affluent peer anyway (a domain must have *some* leader).
            self.rm_id = max(
                candidates, key=lambda c: (c[1] * c[2] * c[3], c[0])
            )[0]
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.event(
                "rm.elected", node=self.node_id, rm=self.rm_id,
                members=len(self.members),
            )
        for pid in self.members:
            self._ack(pid, role="rm" if pid == self.rm_id else "peer")

    def _ack(self, pid: str, role: str) -> None:
        self.transport.send(Message(
            kind=protocol.JOIN_ACK,
            src=self.node_id,
            dst=pid,
            payload={
                "role": role,
                "rm_id": self.rm_id,
                "domain_id": self.domain_id,
                "roster": {p: dict(r) for p, r in self.members.items()},
            },
            size=protocol.size_of(protocol.JOIN_ACK),
        ))

    def __repr__(self) -> str:
        return (
            f"<BootstrapServer {self.node_id} members={len(self.members)}"
            f"/{self.expected_peers} rm={self.rm_id}>"
        )

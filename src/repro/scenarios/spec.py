"""The declarative stress-scenario DSL: config file -> ScenarioSpec.

A scenario file (JSON always; TOML when the interpreter ships
``tomllib``, i.e. Python 3.11+) composes four stressor families onto a
base simulation config::

    {
      "name": "flash_crowd",
      "duration": 120.0,
      "base": {"seed": 7, "population": {"n_peers": 24}},
      "arrivals": {"shape": "flash_crowd", "t_start": 40.0,
                   "t_end": 70.0, "multiplier": 6.0},
      "cost": {"dist": "pareto", "alpha": 1.6},
      "faults": [{"at": 50.0, "kind": "partition", "split": 0.5},
                 {"at": 80.0, "kind": "heal"}],
      "adversaries": {"fraction": 0.25, "mode": "constant"},
      "health": {"period": 1.0}
    }

* ``base`` is a partial :class:`~repro.workloads.scenario.ScenarioConfig`
  (same section names as ``repro-run`` configs; unknown keys rejected).
* ``arrivals`` replaces the homogeneous Poisson stream with a shaped
  (non-homogeneous) one; ``cost`` turns the per-object stream durations
  — and hence task costs — heavy-tailed.
* ``faults`` is a script of absolute-sim-time events: correlated
  domain-wide peer failures, random peer crashes, network partitions
  and heals.
* ``adversaries`` marks a deterministic subset of peers as liars that
  misreport load/power to their Resource Manager (and inflate their
  §4.1 qualification claims).
* ``health`` auto-attaches the sim-time :class:`HealthSampler` (and a
  :class:`FlightRecorder`), making deadline-miss ratio, load imbalance
  and redirect rate regression-gateable.

Everything random is drawn from named substreams of the base config's
seed, so one seed reproduces a run bit-for-bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.workloads.configio import config_from_dict
from repro.workloads.scenario import ScenarioConfig

#: Bumped when the scenario-metrics JSON layout changes incompatibly.
METRICS_SCHEMA_VERSION = 1

_ARRIVAL_SHAPES = ("constant", "diurnal", "flash_crowd")
_COST_DISTS = ("fixed", "pareto", "lognormal")
_FAULT_KINDS = ("fail_domain", "fail_peers", "partition", "heal")
_ADVERSARY_MODES = ("constant", "inflate", "intermittent")


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"scenario spec: {msg}")


def _check_keys(section: str, doc: Dict[str, Any], allowed: tuple) -> None:
    unknown = set(doc) - set(allowed)
    _require(not unknown, f"{section}: unknown keys {sorted(unknown)}")


@dataclass
class ArrivalSpec:
    """Shape of the task arrival rate over simulated time."""

    shape: str = "constant"
    #: Diurnal: ``rate * (1 + amplitude * sin(2pi (t - phase)/period))``.
    period: float = 120.0
    amplitude: float = 0.8
    phase: float = 0.0
    #: Flash crowd: ``rate * multiplier`` inside ``[t_start, t_end)``.
    t_start: float = 0.0
    t_end: float = 0.0
    multiplier: float = 5.0

    def __post_init__(self) -> None:
        _require(self.shape in _ARRIVAL_SHAPES,
                 f"arrivals.shape must be one of {_ARRIVAL_SHAPES}, "
                 f"got {self.shape!r}")
        _require(self.period > 0, "arrivals.period must be positive")
        _require(0.0 <= self.amplitude <= 1.0,
                 "arrivals.amplitude must be in [0, 1]")
        _require(self.multiplier > 0,
                 "arrivals.multiplier must be positive")
        if self.shape == "flash_crowd":
            _require(self.t_end > self.t_start,
                     "arrivals.t_end must exceed t_start")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ArrivalSpec":
        _check_keys("arrivals", doc, (
            "shape", "period", "amplitude", "phase",
            "t_start", "t_end", "multiplier",
        ))
        return cls(**doc)


@dataclass
class CostSpec:
    """Heavy-tailed task-cost (stream duration) distribution."""

    dist: str = "pareto"
    alpha: float = 1.6
    sigma: float = 0.75
    cap: float = 12.0

    def __post_init__(self) -> None:
        _require(self.dist in _COST_DISTS,
                 f"cost.dist must be one of {_COST_DISTS}, "
                 f"got {self.dist!r}")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CostSpec":
        _check_keys("cost", doc, ("dist", "alpha", "sigma", "cap"))
        return cls(**doc)


@dataclass
class FaultSpec:
    """One scripted fault at an absolute simulated time."""

    at: float
    kind: str
    #: ``fail_domain``: which domain (rank by id) and member fraction.
    domain_index: int = 0
    fraction: float = 0.5
    include_rm: bool = False
    #: ``fail_peers``: how many random live peers crash.
    count: int = 1
    #: ``partition``: either a random node split (fraction in group A)
    #: or an explicit list of domain indices isolated from the rest.
    split: float = 0.5
    domains: Optional[List[int]] = None

    def __post_init__(self) -> None:
        _require(self.kind in _FAULT_KINDS,
                 f"faults[].kind must be one of {_FAULT_KINDS}, "
                 f"got {self.kind!r}")
        _require(self.at >= 0, "faults[].at must be non-negative")
        _require(0.0 < self.fraction <= 1.0,
                 "faults[].fraction must be in (0, 1]")
        _require(self.count >= 1, "faults[].count must be >= 1")
        _require(0.0 < self.split < 1.0,
                 "faults[].split must be in (0, 1)")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultSpec":
        _check_keys("faults[]", doc, (
            "at", "kind", "domain_index", "fraction", "include_rm",
            "count", "split", "domains",
        ))
        _require("at" in doc and "kind" in doc,
                 "faults[] entries need 'at' and 'kind'")
        return cls(**doc)


@dataclass
class AdversarySpec:
    """Misbehaving peers: poisoned self-reports + inflated claims."""

    #: Fraction of the population that lies (deterministic choice from
    #: the scenario seed's "adversary" stream).
    fraction: float = 0.2
    mode: str = "constant"
    #: ``constant``: always report this utilization (idle-looking liars
    #: attract work they cannot absorb).
    claimed_utilization: float = 0.0
    #: ``inflate``: report power x factor and load / factor.
    inflate_factor: float = 4.0
    #: ``intermittent``: lie during the first ``duty`` of every
    #: ``period`` seconds, tell the truth otherwise.
    period: float = 20.0
    duty: float = 0.5
    #: Qualification poisoning: claimed power/bandwidth multiplier at
    #: join time (the peer's true capacity is restored after joining,
    #: so the §4.1 election ingests the lie but execution does not).
    claim_factor: float = 1.0

    def __post_init__(self) -> None:
        _require(0.0 < self.fraction <= 1.0,
                 "adversaries.fraction must be in (0, 1]")
        _require(self.mode in _ADVERSARY_MODES,
                 f"adversaries.mode must be one of {_ADVERSARY_MODES}, "
                 f"got {self.mode!r}")
        _require(0.0 <= self.claimed_utilization <= 1.0,
                 "adversaries.claimed_utilization must be in [0, 1]")
        _require(self.inflate_factor >= 1.0,
                 "adversaries.inflate_factor must be >= 1")
        _require(self.period > 0, "adversaries.period must be positive")
        _require(0.0 < self.duty < 1.0,
                 "adversaries.duty must be in (0, 1)")
        _require(self.claim_factor >= 1.0,
                 "adversaries.claim_factor must be >= 1")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AdversarySpec":
        _check_keys("adversaries", doc, (
            "fraction", "mode", "claimed_utilization", "inflate_factor",
            "period", "duty", "claim_factor",
        ))
        return cls(**doc)


@dataclass
class HealthSpec:
    """Auto-attached health sampling + flight recorder."""

    period: float = 1.0
    flight_recorder: bool = True
    miss_burst: int = 8
    miss_window: float = 10.0
    cooldown: float = 60.0

    def __post_init__(self) -> None:
        _require(self.period > 0, "health.period must be positive")
        _require(self.miss_burst >= 1, "health.miss_burst must be >= 1")
        _require(self.miss_window > 0,
                 "health.miss_window must be positive")
        _require(self.cooldown > 0, "health.cooldown must be positive")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "HealthSpec":
        _check_keys("health", doc, (
            "period", "flight_recorder", "miss_burst", "miss_window",
            "cooldown",
        ))
        return cls(**doc)


@dataclass
class ScenarioSpec:
    """One validated stress scenario, ready for the builder."""

    name: str
    description: str = ""
    duration: float = 120.0
    drain: float = 30.0
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    arrivals: Optional[ArrivalSpec] = None
    cost: Optional[CostSpec] = None
    faults: List[FaultSpec] = field(default_factory=list)
    adversaries: Optional[AdversarySpec] = None
    health: Optional[HealthSpec] = None

    def __post_init__(self) -> None:
        _require(bool(self.name), "a scenario needs a name")
        _require(self.duration > 0, "duration must be positive")
        _require(self.drain >= 0, "drain must be non-negative")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ScenarioSpec":
        """Validate a parsed scenario document."""
        _require(isinstance(doc, dict), "document must be an object")
        _check_keys("top level", doc, (
            "name", "description", "duration", "drain", "base",
            "arrivals", "cost", "faults", "adversaries", "health",
        ))
        _require("name" in doc, "a scenario needs a name")
        base = config_from_dict(doc.get("base", {}) or {})
        faults_doc = doc.get("faults", []) or []
        _require(isinstance(faults_doc, list), "faults must be a list")
        return cls(
            name=str(doc["name"]),
            description=str(doc.get("description", "")),
            duration=float(doc.get("duration", 120.0)),
            drain=float(doc.get("drain", 30.0)),
            base=base,
            arrivals=(
                ArrivalSpec.from_dict(doc["arrivals"])
                if doc.get("arrivals") else None
            ),
            cost=(
                CostSpec.from_dict(doc["cost"])
                if doc.get("cost") else None
            ),
            faults=[FaultSpec.from_dict(f) for f in faults_doc],
            adversaries=(
                AdversarySpec.from_dict(doc["adversaries"])
                if doc.get("adversaries") else None
            ),
            health=(
                HealthSpec.from_dict(doc["health"])
                if doc.get("health") else None
            ),
        )


def parse_spec(text: str, fmt: str = "json") -> ScenarioSpec:
    """Parse scenario *text* in the given format (``json``/``toml``)."""
    if fmt == "json":
        return ScenarioSpec.from_dict(json.loads(text))
    if fmt == "toml":
        try:
            import tomllib  # Python 3.11+
        except ImportError as exc:  # pragma: no cover - 3.10 path
            raise ValueError(
                "TOML scenario files need Python 3.11+ (tomllib); "
                "use the JSON form instead"
            ) from exc
        return ScenarioSpec.from_dict(tomllib.loads(text))
    raise ValueError(f"unknown scenario format {fmt!r}")


def load_spec(path: str) -> ScenarioSpec:
    """Load a scenario spec from a ``.json`` or ``.toml`` file."""
    ext = os.path.splitext(path)[1].lower()
    fmt = "toml" if ext == ".toml" else "json"
    with open(path, "r", encoding="utf-8") as fp:
        return parse_spec(fp.read(), fmt=fmt)

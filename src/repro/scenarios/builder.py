"""Compose a validated :class:`ScenarioSpec` into a runnable system.

:func:`build_stressed_scenario` layers the DSL's stressor families onto
the stock :func:`~repro.workloads.scenario.build_scenario` pipeline:

* ``cost``      -> heavy-tailed object durations (PopulationConfig),
* ``arrivals``  -> a shaped non-homogeneous arrival process,
* ``adversaries`` -> inflated join claims + poisoned load reports,
* ``faults``    -> a scripted :class:`FaultScript` process,
* ``health``    -> sim-time HealthSampler + FlightRecorder, so the run
  emits regression-gateable series (deadline-miss ratio, imbalance,
  redirect rate) without any manual wiring.

Every random choice derives from named substreams of the base seed, so
two runs of the same spec produce identical event and message counts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.results.collector import RunSummary
from repro.scenarios.adversary import MisbehavingPeer, choose_liars
from repro.scenarios.arrivals import make_workload_cls
from repro.scenarios.faults import FaultScript
from repro.scenarios.spec import METRICS_SCHEMA_VERSION, ScenarioSpec
from repro.sim.rng import RandomStreams
from repro.workloads.scenario import Scenario, build_scenario


@dataclass
class StressedScenario:
    """A built stress scenario plus its attached instrumentation."""

    spec: ScenarioSpec
    scenario: Scenario
    faults: Optional[FaultScript] = None
    liars: List[MisbehavingPeer] = field(default_factory=list)
    tel: Optional[Any] = None
    sampler: Optional[Any] = None
    recorder: Optional[Any] = None
    summary: Optional[RunSummary] = None
    #: The ProfileSession attached by :meth:`attach_profiling`, if any.
    profile: Optional[Any] = None

    # -- convenience passthroughs ------------------------------------------
    @property
    def env(self):
        return self.scenario.env

    @property
    def overlay(self):
        return self.scenario.overlay

    @property
    def network(self):
        return self.scenario.network

    # -- profiling ---------------------------------------------------------
    def attach_profiling(
        self,
        budget: Optional[float] = None,
        stride: Optional[int] = None,
        out_dir: str = ".",
    ):
        """Arm the self-observation bundle (``repro-run --profile``).

        Attaches a :func:`~repro.profiling.profile_sim` session: the
        event-count profiler, the overhead budgeter, and — when the spec
        has a ``health`` section — SLO burn-rate monitoring over the
        sampler series.  Specs that disabled the flight recorder get one
        created here anyway so SLO alerts have somewhere to dump.
        """
        from repro.profiling import profile_sim
        from repro.profiling.budget import DEFAULT_BUDGET
        from repro.profiling.sampler import DEFAULT_STRIDE

        if (
            self.tel is not None
            and self.sampler is not None
            and self.recorder is None
        ):
            from repro.telemetry.flight_recorder import FlightRecorder

            health = self.spec.health
            self.recorder = FlightRecorder(
                self.tel,
                out_dir=out_dir,
                miss_burst=health.miss_burst,
                miss_window=health.miss_window,
                cooldown=health.cooldown,
                sampler=self.sampler,
            )
        self.profile = profile_sim(
            self.env,
            tel=self.tel,
            sampler=self.sampler,
            recorder=self.recorder,
            budget=DEFAULT_BUDGET if budget is None else budget,
            stride=DEFAULT_STRIDE if stride is None else stride,
        )
        return self.profile

    # -- execution ---------------------------------------------------------
    def run(self) -> RunSummary:
        """Run the scripted duration + drain; returns the RunSummary."""
        try:
            if self.tel is not None:
                with telemetry.session(self.tel):
                    self.summary = self.scenario.run(
                        self.spec.duration, drain=self.spec.drain
                    )
                    if self.profile is not None:
                        self.profile.stop()
                        self.profile.publish(self.tel.metrics)
                    if self.recorder is not None:
                        self.recorder.close()
            else:
                self.summary = self.scenario.run(
                    self.spec.duration, drain=self.spec.drain
                )
                if self.profile is not None:
                    self.profile.stop()
        finally:
            # Teardown: un-wrap the lying report paths so peers reused
            # or rebuilt after the run report honestly again.
            for liar in self.liars:
                liar.detach()
        return self.summary

    # -- reporting ---------------------------------------------------------
    def health_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-series {last, max, mean, n} over the sampled rings."""
        if self.sampler is None:
            return {}
        out: Dict[str, Dict[str, float]] = {}
        for ring in self.sampler.all_series():
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(ring.labels.items())
            )
            key = f"{ring.name}{{{labels}}}" if labels else ring.name
            values = ring.values()
            if not values:
                continue
            out[key] = {
                "last": values[-1],
                "max": max(values),
                "mean": sum(values) / len(values),
                "n": len(values),
            }
        return out

    def metrics_document(self) -> Dict[str, Any]:
        """The schema-versioned per-scenario metrics JSON."""
        if self.summary is None:
            raise RuntimeError("run() the scenario before reporting")
        net = self.network.stats
        doc: Dict[str, Any] = {
            "schema_version": METRICS_SCHEMA_VERSION,
            "scenario": self.spec.name,
            "seed": self.scenario.config.seed,
            "duration": self.spec.duration,
            "events": self.env.n_processed,
            "messages": net.sent,
            "dropped": net.dropped,
            "partition_drops": net.partition_drops,
            "summary": {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in self.summary.row().items()
            },
            "value_goodput": round(self.summary.value_goodput, 6),
            "faults": self.faults.counters() if self.faults else {},
            "adversary": {
                "liars": [m.peer.node_id for m in self.liars],
                "reports": sum(m.n_reports for m in self.liars),
                "lies": sum(m.n_lies for m in self.liars),
            } if self.liars else {},
            "health": {
                name: {k: round(v, 6) for k, v in stats.items()}
                for name, stats in self.health_summary().items()
            },
            "flight_dumps": (
                list(self.recorder.dumps) if self.recorder else []
            ),
        }
        reputation = self.reputation_document()
        if reputation:
            doc["reputation"] = reputation
        if self.profile is not None:
            doc["profile"] = self.profile.record(top_n=10)
        return doc

    def reputation_document(self) -> Dict[str, Any]:
        """Merged trust state across every defense-enabled RM.

        Empty when no RM ran with ``enable_defense`` — the metrics doc
        of an undefended run is unchanged.
        """
        quarantined: set = set()
        ever: set = set()
        trust: Dict[str, float] = {}
        signals: Dict[str, int] = {}
        total = 0
        seen = False
        now = self.env.now
        for rm in self.overlay.rms():
            engine = getattr(rm, "reputation", None)
            if engine is None:
                continue
            seen = True
            snap = engine.snapshot(now)
            quarantined.update(snap["quarantined"])
            ever.update(snap["ever_quarantined"])
            total += snap["quarantines_total"]
            for pid, st in snap["peers"].items():
                # A peer judged by several RMs keeps its worst score.
                score = st["score"]
                if pid not in trust or score < trust[pid]:
                    trust[pid] = score
            for sig, n in snap["signals"].items():
                signals[sig] = signals.get(sig, 0) + n
        if not seen:
            return {}
        return {
            "quarantined": sorted(quarantined),
            "ever_quarantined": sorted(ever),
            "quarantines_total": total,
            "trust": {pid: trust[pid] for pid in sorted(trust)},
            "signals": signals,
        }


def build_stressed_scenario(
    spec: ScenarioSpec, out_dir: str = "."
) -> StressedScenario:
    """Assemble the full stressed system described by *spec*.

    ``out_dir`` is where flight-recorder anomaly bundles land (when the
    ``health`` section arms the recorder).
    """
    # The spec's embedded base config is mutated below (cost knobs,
    # canonical-duration coupling inside build_scenario); deep-copy so
    # one loaded spec can be built repeatedly (bench warmup/repeat).
    cfg = copy.deepcopy(spec.base)

    if spec.cost is not None:
        pop = cfg.population
        pop.duration_dist = spec.cost.dist
        pop.duration_pareto_alpha = spec.cost.alpha
        pop.duration_sigma = spec.cost.sigma
        pop.duration_cap = spec.cost.cap

    workload_cls = None
    if spec.arrivals is not None and spec.arrivals.shape != "constant":
        workload_cls = make_workload_cls(spec.arrivals)

    # Adversaries: decide who lies *before* the population joins, from
    # the same seed-derived stream machinery the run itself uses
    # (RandomStreams is pure in the seed, so this pre-build instance
    # draws the same substream the built scenario would).
    liar_ids: List[str] = []
    true_power: Dict[str, float] = {}
    spec_transform = None
    adv = spec.adversaries
    if adv is not None:
        adv_rng = RandomStreams(cfg.seed).get("adversary")

        def spec_transform(specs):
            liar_ids.extend(
                choose_liars(
                    [s.peer_id for s in specs], adv.fraction, adv_rng
                )
            )
            chosen = set(liar_ids)
            for s in specs:
                if s.peer_id in chosen:
                    true_power[s.peer_id] = s.power
                    s.power *= adv.claim_factor
                    s.bandwidth *= adv.claim_factor
            return specs

    build_kwargs: Dict[str, Any] = {"spec_transform": spec_transform}
    if workload_cls is not None:
        build_kwargs["workload_cls"] = workload_cls
    scenario = build_scenario(cfg, **build_kwargs)

    liars: List[MisbehavingPeer] = []
    if adv is not None:
        for pid in liar_ids:
            node = scenario.overlay.peers.get(pid)
            if node is None:  # the join was rejected despite the claims
                continue
            liars.append(
                MisbehavingPeer(node, adv, true_power.get(pid, node.config.power))
            )

    faults: Optional[FaultScript] = None
    if spec.faults:
        faults = FaultScript(
            scenario.overlay,
            scenario.network,
            spec.faults,
            rng=scenario.streams.get("faults"),
        )

    tel = sampler = recorder = None
    if spec.health is not None:
        from repro.telemetry.flight_recorder import FlightRecorder
        from repro.telemetry.timeseries import HealthSampler, overlay_probes

        health = spec.health
        tel = telemetry.Telemetry.sim(scenario.env)
        sampler = HealthSampler(tel, period=health.period)
        for probe in overlay_probes(
            scenario.overlay, scenario.network, per_peer=False
        ):
            sampler.add_probe(probe)
        sampler.attach_sim(scenario.env)
        if health.flight_recorder:
            recorder = FlightRecorder(
                tel,
                out_dir=out_dir,
                miss_burst=health.miss_burst,
                miss_window=health.miss_window,
                cooldown=health.cooldown,
                sampler=sampler,
            )

    return StressedScenario(
        spec=spec,
        scenario=scenario,
        faults=faults,
        liars=liars,
        tel=tel,
        sampler=sampler,
        recorder=recorder,
    )


def run_spec(spec: ScenarioSpec, out_dir: str = ".") -> Dict[str, Any]:
    """Build, run and report one spec in a single call."""
    stressed = build_stressed_scenario(spec, out_dir=out_dir)
    stressed.run()
    return stressed.metrics_document()

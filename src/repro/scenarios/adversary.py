"""Misbehaving peers: poisoned self-reports and inflated join claims.

The paper's control loop (§3.1, §4.1) trusts peers twice: at join time
(claimed power/bandwidth/uptime drive qualification and the eligible
list) and continuously (Profiler load reports drive placement).  A
:class:`MisbehavingPeer` exploits both:

* **join-time** — the scenario builder inflates the liar's
  :class:`PeerSpec` claims before the join protocol runs (so the RM's
  records, qualification scoring and backup election all ingest the
  lie) and restores the node's *true* processor power afterwards;
* **run-time** — the wrapper intercepts ``Profiler.report_fn`` and
  rewrites each :class:`LoadReport` on its way to the RM: a liar can
  claim it is idle (``constant``), overstate its power while
  understating its load (``inflate``), or alternate between lying and
  truth (``intermittent``).

The wrapper sits between the Profiler and the peer's own send path, so
poisoned reports flow through the normal LOAD_UPDATE message, into the
RM's load table, and from there into gossip summaries — exactly the
path honest data takes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.monitoring.profiler import LoadReport
from repro.scenarios.spec import AdversarySpec


def choose_liars(
    peer_ids: Sequence[str], fraction: float, rng: np.random.Generator
) -> List[str]:
    """A deterministic (stream-seeded) subset of *peer_ids* that lie."""
    ids = sorted(peer_ids)
    k = max(1, int(round(fraction * len(ids))))
    k = min(k, len(ids))
    idx = rng.choice(len(ids), size=k, replace=False)
    return [ids[int(i)] for i in sorted(idx)]


class MisbehavingPeer:
    """Wraps one built peer so its self-reports lie to the RM."""

    def __init__(self, peer, spec: AdversarySpec, true_power: float) -> None:
        self.peer = peer
        self.spec = spec
        #: The peer's real capacity (its claims may be inflated).
        self.true_power = float(true_power)
        self.n_reports = 0
        self.n_lies = 0
        # Undo the join-claim inflation: the peer *executes* at its true
        # power; only its paperwork was inflated.
        peer.processor.power = self.true_power
        peer.config.power = self.true_power
        self._forward = peer.profiler.report_fn
        peer.profiler.report_fn = self._report

    # -- the lie -----------------------------------------------------------
    def _lying_now(self, now: float) -> bool:
        if self.spec.mode != "intermittent":
            return True
        return (now % self.spec.period) < self.spec.duty * self.spec.period

    def _corrupt(self, report: LoadReport) -> None:
        spec = self.spec
        if spec.mode == "inflate":
            report.power *= spec.inflate_factor
            report.utilization /= spec.inflate_factor
            report.load /= spec.inflate_factor
            report.queue_work /= spec.inflate_factor
        else:  # constant / intermittent: claim to be (nearly) idle
            u = spec.claimed_utilization
            report.utilization = u
            report.load = report.power * u
            report.queue_work = 0.0
            report.queue_length = 0

    def _report(self, report: LoadReport) -> None:
        self.n_reports += 1
        if self._lying_now(report.time):
            self._corrupt(report)
            self.n_lies += 1
        if self._forward is not None:
            self._forward(report)

    def detach(self) -> None:
        """Restore the peer's original report path (scenario teardown).

        Idempotent, and a no-op if something else re-wrapped the
        profiler after us — a rebuilt/restored peer must never end up
        with stacked lying wrappers or lose a later wrapper.
        """
        # == not `is`: attribute access mints a fresh bound method.
        if self.peer.profiler.report_fn == self._report:
            self.peer.profiler.report_fn = self._forward

    def __repr__(self) -> str:
        return (
            f"<MisbehavingPeer {self.peer.node_id} mode={self.spec.mode} "
            f"lies={self.n_lies}/{self.n_reports}>"
        )

"""Scripted fault injection: correlated failures, partitions, heals.

A :class:`FaultScript` replays a list of :class:`FaultSpec` events at
their absolute simulated times inside the environment.  All random
choices (which peers die, which side of a partition a node lands on)
come from one scenario-seeded stream, so a fault script is as
reproducible as the workload it stresses.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, List

import numpy as np

from repro.scenarios.spec import FaultSpec


class FaultScript:
    """Drives scripted faults through an overlay + network fabric."""

    def __init__(
        self,
        overlay,
        network,
        events: List[FaultSpec],
        rng: np.random.Generator,
    ) -> None:
        self.overlay = overlay
        self.network = network
        self.events = sorted(events, key=lambda e: e.at)
        self.rng = rng
        #: (time, kind, details) per executed event, in order.
        self.log: List[tuple] = []
        self.n_failed = 0
        self.n_partitions = 0
        self.n_heals = 0
        self._proc = overlay.env.process(self._loop(), name="fault-script")

    # -- helpers -----------------------------------------------------------
    def _domain_ids(self) -> List[str]:
        return sorted(self.overlay.domains)

    def _live_members(self, domain_id: str, include_rm: bool) -> List[str]:
        overlay = self.overlay
        rm_id = overlay.domains[domain_id].rm.node_id
        out = []
        for pid, did in sorted(overlay.domain_of.items()):
            if did != domain_id:
                continue
            node = overlay.peers.get(pid)
            if node is None or not node.alive:
                continue
            if pid == rm_id and not include_rm:
                continue
            out.append(pid)
        return out

    def _pick(self, pool: List[str], k: int) -> List[str]:
        if k >= len(pool):
            return list(pool)
        idx = self.rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in sorted(idx)]

    # -- fault kinds -------------------------------------------------------
    def _fail_domain(self, ev: FaultSpec) -> Dict[str, Any]:
        domains = self._domain_ids()
        if not domains:
            return {"failed": []}
        domain_id = domains[ev.domain_index % len(domains)]
        members = self._live_members(domain_id, ev.include_rm)
        victims = self._pick(
            members, max(1, math.ceil(ev.fraction * len(members)))
        ) if members else []
        for pid in victims:
            self.overlay.fail_peer(pid)
        self.n_failed += len(victims)
        return {"domain": domain_id, "failed": victims}

    def _fail_peers(self, ev: FaultSpec) -> Dict[str, Any]:
        live = [
            pid for pid, node in sorted(self.overlay.peers.items())
            if node.alive
        ]
        victims = self._pick(live, ev.count)
        for pid in victims:
            self.overlay.fail_peer(pid)
        self.n_failed += len(victims)
        return {"failed": victims}

    def _partition(self, ev: FaultSpec) -> Dict[str, Any]:
        if ev.domains is not None:
            domains = self._domain_ids()
            isolated = {
                domains[i % len(domains)] for i in ev.domains
            } if domains else set()
            group_a = [
                pid for pid, did in sorted(self.overlay.domain_of.items())
                if did in isolated
            ]
        else:
            everyone = sorted(self.overlay.domain_of)
            k = max(1, int(round(ev.split * len(everyone))))
            group_a = self._pick(everyone, min(k, max(1, len(everyone) - 1)))
        # One listed group; everyone else is the implicit residual side.
        self.network.set_partition([group_a])
        self.n_partitions += 1
        return {"group_a": group_a}

    def _heal(self, ev: FaultSpec) -> Dict[str, Any]:
        self.network.heal_partition()
        self.n_heals += 1
        return {}

    # -- the process -------------------------------------------------------
    def _loop(self) -> Generator:
        env = self.overlay.env
        handlers = {
            "fail_domain": self._fail_domain,
            "fail_peers": self._fail_peers,
            "partition": self._partition,
            "heal": self._heal,
        }
        for ev in self.events:
            delay = ev.at - env.now
            if delay > 0:
                yield env.timeout(delay)
            detail = handlers[ev.kind](ev)
            self.log.append((env.now, ev.kind, detail))

    def counters(self) -> Dict[str, int]:
        return {
            "fault_events": len(self.log),
            "peers_failed": self.n_failed,
            "partitions": self.n_partitions,
            "heals": self.n_heals,
        }

"""Adversarial scenario DSL: declarative stress composition.

Config-driven workloads that layer trace-shaped arrivals, heavy-tailed
task costs, correlated failures/partitions, misbehaving peers and
auto-attached health sampling onto any simulated scenario.  See
``docs/scenarios.md`` for the file format.
"""

from repro.scenarios.adversary import MisbehavingPeer, choose_liars
from repro.scenarios.arrivals import (
    ShapedArrivalProcess,
    make_workload_cls,
    peak_multiplier,
    rate_multiplier,
)
from repro.scenarios.builder import (
    StressedScenario,
    build_stressed_scenario,
    run_spec,
)
from repro.scenarios.faults import FaultScript
from repro.scenarios.spec import (
    METRICS_SCHEMA_VERSION,
    AdversarySpec,
    ArrivalSpec,
    CostSpec,
    FaultSpec,
    HealthSpec,
    ScenarioSpec,
    load_spec,
    parse_spec,
)
from repro.scenarios.suite import (
    DEFAULT_SCENARIO_DIR,
    discover,
    make_bench_fn,
    run_suite,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_SCENARIO_DIR",
    "AdversarySpec",
    "ArrivalSpec",
    "CostSpec",
    "FaultSpec",
    "FaultScript",
    "HealthSpec",
    "MisbehavingPeer",
    "ScenarioSpec",
    "ShapedArrivalProcess",
    "StressedScenario",
    "build_stressed_scenario",
    "choose_liars",
    "discover",
    "load_spec",
    "make_bench_fn",
    "make_workload_cls",
    "parse_spec",
    "peak_multiplier",
    "rate_multiplier",
    "run_spec",
    "run_suite",
]

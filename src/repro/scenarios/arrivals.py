"""Non-homogeneous Poisson arrivals for shaped workloads.

:class:`ShapedArrivalProcess` subclasses the homogeneous
:class:`~repro.workloads.arrivals.TaskArrivalProcess` and overrides only
the inter-arrival hook, generating a non-homogeneous Poisson stream by
Lewis-Shedler thinning: candidate gaps are drawn at the peak rate and
accepted with probability ``rate(t) / peak``.  Everything else — object
popularity, goal choice, deadline slack, submission — is the stock
machinery, so shaped runs differ from plain ones only in *when* tasks
arrive.
"""

from __future__ import annotations

import math

from repro.scenarios.spec import ArrivalSpec
from repro.workloads.arrivals import TaskArrivalProcess

_TWO_PI = 2.0 * math.pi


def rate_multiplier(shape: ArrivalSpec, t: float) -> float:
    """The instantaneous rate multiplier at simulated time *t* (>= 0)."""
    if shape.shape == "diurnal":
        return 1.0 + shape.amplitude * math.sin(
            _TWO_PI * (t - shape.phase) / shape.period
        )
    if shape.shape == "flash_crowd":
        if shape.t_start <= t < shape.t_end:
            return shape.multiplier
        return 1.0
    return 1.0


def peak_multiplier(shape: ArrivalSpec) -> float:
    """An upper bound on :func:`rate_multiplier` (thinning envelope)."""
    if shape.shape == "diurnal":
        return 1.0 + shape.amplitude
    if shape.shape == "flash_crowd":
        return max(1.0, shape.multiplier)
    return 1.0


class ShapedArrivalProcess(TaskArrivalProcess):
    """Arrivals whose rate follows an :class:`ArrivalSpec` curve.

    Build concrete classes with :func:`make_workload_cls` — the
    scenario builder passes the result as ``workload_cls`` to
    ``build_scenario``, which constructs the workload with the stock
    ``(overlay, catalog, objects, config=..., rng=...)`` signature.
    """

    #: Bound by :func:`make_workload_cls` on the subclass.
    shape: ArrivalSpec

    def _next_gap(self, now: float) -> float:
        # Thinning: the candidate stream runs at the peak rate; each
        # candidate survives with probability rate(t)/peak.  Two draws
        # per candidate, so shaped runs never share trajectories with
        # plain ones (they are benched against their own goldens).
        peak = peak_multiplier(self.shape)
        peak_rate = self.config.rate * peak
        rng = self.rng
        t = now
        while True:
            t += rng.exponential(1.0 / peak_rate)
            if rng.random() * peak <= rate_multiplier(self.shape, t):
                return t - now


def make_workload_cls(shape: ArrivalSpec) -> type:
    """A :class:`ShapedArrivalProcess` subclass with *shape* bound."""
    return type(
        f"Shaped_{shape.shape}_ArrivalProcess",
        (ShapedArrivalProcess,),
        {"shape": shape},
    )

"""The adversarial scenario suite behind ``repro-bench --suite``.

Discovers pinned scenario configs (``benchmarks/scenarios/*.json`` by
convention), runs each through the DSL builder with the same
warmup/repeat discipline as the performance suite, and returns
:class:`BenchRecord` s whose ``metrics`` carry the full per-scenario
metrics document — so the report stays schema-compatible with the
existing ``--baseline`` / ``--gate-pct`` regression gate.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.benchmarking import harness
from repro.scenarios.builder import build_stressed_scenario
from repro.scenarios.spec import ScenarioSpec, load_spec

#: Where the pinned suite lives, relative to the repo root.
DEFAULT_SCENARIO_DIR = os.path.join("benchmarks", "scenarios")

#: ``--quick`` caps (CI smoke): long scripted runs shrink to these.
QUICK_DURATION = 45.0
QUICK_DRAIN = 15.0


def discover(scenario_dir: str = DEFAULT_SCENARIO_DIR) -> List[str]:
    """Paths of the scenario configs in *scenario_dir*, name-sorted."""
    if not os.path.isdir(scenario_dir):
        raise FileNotFoundError(
            f"scenario directory not found: {scenario_dir}"
        )
    out = [
        os.path.join(scenario_dir, name)
        for name in sorted(os.listdir(scenario_dir))
        if name.endswith((".json", ".toml"))
    ]
    if not out:
        raise FileNotFoundError(
            f"no scenario configs (*.json, *.toml) in {scenario_dir}"
        )
    return out


def _quicken(spec: ScenarioSpec) -> ScenarioSpec:
    spec.duration = min(spec.duration, QUICK_DURATION)
    spec.drain = min(spec.drain, QUICK_DRAIN)
    return spec


def make_bench_fn(
    path: str, quick: bool = False, out_dir: str = "."
) -> Callable[[], Dict[str, Any]]:
    """A harness-compatible thunk running one scenario config."""

    def fn() -> Dict[str, Any]:
        spec = load_spec(path)
        if quick:
            _quicken(spec)
        stressed = build_stressed_scenario(spec, out_dir=out_dir)
        stressed.run()
        doc = stressed.metrics_document()
        return {"events": doc["events"], "metrics": doc}

    return fn


def run_suite(
    scenario_dir: str = DEFAULT_SCENARIO_DIR,
    only: Optional[List[str]] = None,
    quick: bool = False,
    warmup: int = 0,
    repeat: int = 1,
    out_dir: str = ".",
    progress: Optional[Callable[[str], None]] = None,
    profile: bool = False,
) -> List[harness.BenchRecord]:
    """Run the discovered scenario configs; returns their records.

    ``only`` filters by scenario name (the config's ``name`` field,
    which by convention matches the file stem).
    """
    paths = discover(scenario_dir)
    if only is not None:
        stems = {
            os.path.splitext(os.path.basename(p))[0]: p for p in paths
        }
        unknown = [n for n in only if n not in stems]
        if unknown:
            raise KeyError(
                f"unknown scenario(s) {unknown}; known: {sorted(stems)}"
            )
        paths = [stems[n] for n in only]

    records: List[harness.BenchRecord] = []
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        if progress is not None:
            progress(name)
        record = harness.run_benchmark(
            name,
            make_bench_fn(path, quick=quick, out_dir=out_dir),
            params={"config": path, "quick": quick},
            warmup=warmup,
            repeat=repeat,
            profile=profile,
        )
        records.append(record)
    return records

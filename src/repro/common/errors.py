"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class UnknownPeer(ReproError, KeyError):
    """An operation referenced a peer id the component does not know."""


class AllocationError(ReproError):
    """Base class for task-allocation failures."""


class NoFeasibleAllocation(AllocationError):
    """The allocation search found no path satisfying the QoS requirements.

    Carries the task id and, when available, the reason breakdown
    (``no_path`` / ``deadline`` / ``capacity``) so admission control can
    decide between rejection and inter-domain redirection.
    """

    def __init__(self, task_id: str, reason: str = "no_path") -> None:
        super().__init__(f"no feasible allocation for task {task_id}: {reason}")
        self.task_id = task_id
        self.reason = reason


class AdmissionRejected(ReproError):
    """Admission control refused a task (overload, no redirect target)."""

    def __init__(self, task_id: str, reason: str) -> None:
        super().__init__(f"task {task_id} rejected: {reason}")
        self.task_id = task_id
        self.reason = reason

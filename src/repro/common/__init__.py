"""Shared identifiers, errors and small utilities."""

from repro.common.errors import (
    AllocationError,
    AdmissionRejected,
    ConfigError,
    NoFeasibleAllocation,
    ReproError,
    UnknownPeer,
)
from repro.common.util import EWMA, clamp, fmt_table, percentile

__all__ = [
    "AllocationError",
    "AdmissionRejected",
    "ConfigError",
    "EWMA",
    "NoFeasibleAllocation",
    "ReproError",
    "UnknownPeer",
    "clamp",
    "fmt_table",
    "percentile",
]

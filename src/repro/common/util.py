"""Small shared utilities: smoothing, clamping, table formatting."""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp *value* into ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    return lo if value < lo else hi if value > hi else value


class EWMA:
    """Exponentially weighted moving average.

    Used by the Profiler to smooth instantaneous load samples, matching
    the paper's "current processor load" that tolerates measurement noise.

    Parameters
    ----------
    alpha:
        Weight of the newest sample, in ``(0, 1]``. ``alpha=1`` disables
        smoothing.
    initial:
        Starting value; if ``None`` the first update seeds the average.
    """

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.3, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: Optional[float] = initial

    def update(self, sample: float) -> float:
        """Fold in one sample and return the new average."""
        if self.value is None:
            self.value = float(sample)
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        """Current average, or *default* before any sample."""
        return default if self.value is None else self.value


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation.

    Avoids a NumPy round-trip for the short sequences metrics code uses.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def fmt_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = ".3f",
) -> str:
    """Render an aligned plain-text table (experiment harness output)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

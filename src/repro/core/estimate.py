"""Completion-time estimation from the RM's load view.

The Fig-3 algorithm "calculates which paths satisfy the deadline by
utilizing the current load information".  The estimator turns a
candidate path into a predicted task execution time (paper §3.3:
*"computed as the sum of the processing times of the objects and
services on the processors and their communication times"*):

* per step: ``work / free_rate`` where ``free_rate`` is the hosting
  peer's processing power minus its effective load — contention slows
  services down;
* per hop: expected network latency plus ``bytes / bandwidth``.

Estimates use the RM's *possibly stale* view; the gap between estimate
and actual execution is exactly the soft-real-time story experiment E7
explores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import UnknownPeer
from repro.core.info_base import DomainInfoBase
from repro.graphs.resource_graph import ServiceEdge
from repro.net.network import Network


@dataclass
class CompletionTimeEstimator:
    """Turns candidate paths into predicted completion times.

    Parameters
    ----------
    min_free_frac:
        A busy peer never estimates slower than
        ``power * min_free_frac`` — keeps estimates finite at
        saturation.
    safety_margin:
        Feasibility requires ``estimate <= deadline * (1 - margin)``;
        a small margin absorbs estimation error.
    max_utilization:
        Capacity cap: an assignment pushing a peer's projected
        utilization beyond this is infeasible regardless of deadline.
    """

    min_free_frac: float = 0.05
    safety_margin: float = 0.05
    max_utilization: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.min_free_frac <= 1:
            raise ValueError(f"bad min_free_frac {self.min_free_frac}")
        if not 0 <= self.safety_margin < 1:
            raise ValueError(f"bad safety_margin {self.safety_margin}")
        if self.max_utilization <= 0:
            raise ValueError(f"bad max_utilization {self.max_utilization}")

    # -- building blocks ----------------------------------------------------
    def service_time(
        self,
        info: DomainInfoBase,
        edge: ServiceEdge,
        now: float,
        work_scale: float = 1.0,
    ) -> float:
        """Predicted execution time of one service instance.

        ``work_scale`` adapts the edge's canonical work to the actual
        stream (e.g. a 120 s object on a graph calibrated for 60 s
        streams has ``work_scale == 2``).
        """
        rec = info.peers.get(edge.peer_id)
        if rec is None:
            raise UnknownPeer(edge.peer_id)
        free = rec.power - info.effective_load(edge.peer_id, now)
        free = max(free, rec.power * self.min_free_frac)
        return edge.work * work_scale / free

    def transfer_time(
        self, net: Network, src: str, dst: str, nbytes: float
    ) -> float:
        """Predicted one-hop transfer time."""
        if src == dst or nbytes <= 0:
            return 0.0
        return net.expected_delay(src, dst, nbytes)

    # -- path-level API ----------------------------------------------------------
    def estimate_path(
        self,
        info: DomainInfoBase,
        net: Network,
        path: Sequence[ServiceEdge],
        now: float,
        source_peer: str,
        sink_peer: str,
        in_bytes: float,
        work_scale: float = 1.0,
    ) -> float:
        """Predicted end-to-end execution time of the full path.

        ``in_bytes`` is the source object's size (the first transfer,
        source peer -> first service's peer).
        """
        total = 0.0
        prev_peer = source_peer
        carried = in_bytes
        peers = info.peers
        min_free_frac = self.min_free_frac
        for edge in path:
            # service_time() inlined with a single roster lookup (the
            # allocator walks every candidate path through here); keep
            # the arithmetic identical to service_time.
            peer_id = edge.peer_id
            rec = peers.get(peer_id)
            if rec is None:
                return float("inf")
            total += self.transfer_time(net, prev_peer, peer_id, carried)
            free = rec.power - info.effective_load(peer_id, now)
            free = max(free, rec.power * min_free_frac)
            total += edge.work * work_scale / free
            prev_peer = peer_id
            carried = edge.out_bytes * work_scale
        total += self.transfer_time(net, prev_peer, sink_peer, carried)
        return total

    def path_overloads(
        self,
        info: DomainInfoBase,
        path: Sequence[ServiceEdge],
        now: float,
        deadline: float,
        work_scale: float = 1.0,
    ) -> bool:
        """Capacity check: would this assignment overload any peer?

        The load delta of an edge is its demanded work *rate*:
        ``work / deadline`` (a tighter deadline demands more rate).
        """
        deltas: dict[str, float] = {}
        for edge in path:
            deltas[edge.peer_id] = (
                deltas.get(edge.peer_id, 0.0)
                + edge.work * work_scale / deadline
            )
        for peer_id, delta in deltas.items():
            if not info.has_peer(peer_id):
                return True
            rec = info.peer(peer_id)
            post = info.effective_load(peer_id, now) + delta
            if post > rec.power * self.max_utilization:
                return True
        return False

    def feasible(
        self,
        info: DomainInfoBase,
        net: Network,
        path: Sequence[ServiceEdge],
        deadline: float,
        now: float,
        source_peer: str,
        sink_peer: str,
        in_bytes: float,
        prefix: bool = False,
        work_scale: float = 1.0,
    ) -> bool:
        """Does this (prefix of a) path satisfy the requirement set q?

        ``deadline`` is the *remaining* time budget (for a fresh task
        this equals the relative QoS deadline; for a redirected or
        repaired task the clock has already been running).

        For a *prefix* only the lower-bound time check applies (the
        capacity check is deferred to full candidates: a prefix's peers
        are a subset, so capacity can only be checked meaningfully on
        the complete assignment, and the time so far is already a valid
        lower bound on any completion through this prefix).
        """
        if deadline <= 0:
            return False
        budget = deadline * (1.0 - self.safety_margin)
        elapsed = self.estimate_path(
            info, net, path, now, source_peer,
            sink_peer if not prefix else (path[-1].peer_id if path else source_peer),
            in_bytes, work_scale,
        )
        if elapsed > budget:
            return False
        if not prefix and self.path_overloads(
            info, path, now, deadline, work_scale
        ):
            return False
        return True

    def path_load_deltas(
        self,
        path: Sequence[ServiceEdge],
        deadline: float,
        work_scale: float = 1.0,
    ) -> dict[str, float]:
        """Per-peer load deltas of assigning *path* (work rate demand)."""
        out: dict[str, float] = {}
        for edge in path:
            out[edge.peer_id] = (
                out.get(edge.peer_id, 0.0) + edge.work * work_scale / deadline
            )
        return out

r"""The Jain Fairness Index (paper §4.2, equation 1).

.. math::

    \mathcal{F}(\bar l_{P_D}) =
        \frac{(\sum_{p \in P_D} l_p)^2}{|P_D| \cdot \sum_{p \in P_D} l_p^2}

Properties exercised by the property-based tests (and quoted from §4.2):

* range is ``(0, 1]``; 1 iff all loads are equal;
* scale-free: ``F(c * l) == F(l)`` for ``c > 0``;
* with all other loads fixed, F is maximized when a single peer's load
  equals ``l_best = (Σ_q l_q²) / (Σ_q l_q)`` over the *other* peers
  (:func:`optimal_single_load`), and decreases as the load diverges from
  it in either direction.

The allocator needs *what-if* fairness for many candidate assignments
per request, so :class:`LoadVector` maintains the sum and sum-of-squares
incrementally: evaluating a candidate that touches ``k`` peers is
``O(k)`` instead of ``O(|P_D|)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np


def jain_fairness(loads: Sequence[float] | np.ndarray) -> float:
    """Equation (1): the fairness index of a load distribution.

    An all-zero distribution is perfectly uniform, so it maps to 1.0
    (the 0/0 limit along equal loads).  Negative loads are rejected —
    they have no physical meaning here.
    """
    arr = np.asarray(loads, dtype=float)
    if arr.size == 0:
        raise ValueError("fairness of an empty load distribution")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    total = float(arr.sum())
    sumsq = float(np.square(arr).sum())
    if sumsq == 0.0:
        return 1.0
    return total * total / (arr.size * sumsq)


def optimal_single_load(other_loads: Sequence[float]) -> float:
    """The ``l_best`` of §4.2: the load of one peer that maximizes the
    fairness index given the loads of all *other* peers.

    Derivation: maximizing ``(S+x)^2 / (n (Q+x^2))`` over ``x`` gives
    ``x = Q/S`` with ``S, Q`` the others' sum and sum of squares.
    """
    arr = np.asarray(other_loads, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one other peer")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    s = float(arr.sum())
    if s == 0.0:
        return 0.0
    return float(np.square(arr).sum()) / s


class LoadVector:
    """A named load distribution with O(1) incremental what-if fairness."""

    def __init__(self, loads: Mapping[str, float] | None = None) -> None:
        self._loads: Dict[str, float] = {}
        self._sum = 0.0
        self._sumsq = 0.0
        if loads:
            for peer, load in loads.items():
                self.set(peer, load)

    # -- mutation ------------------------------------------------------------
    def set(self, peer: str, load: float) -> None:
        """Set one peer's load."""
        if load < 0:
            raise ValueError(f"negative load {load} for {peer}")
        old = self._loads.get(peer, 0.0)
        self._loads[peer] = load
        self._sum += load - old
        self._sumsq += load * load - old * old

    def add(self, peer: str, delta: float) -> None:
        """Add *delta* to one peer's load (clamped at zero)."""
        self.set(peer, max(0.0, self.get(peer) + delta))

    def remove(self, peer: str) -> None:
        """Drop a peer from the distribution (peer left the domain)."""
        old = self._loads.pop(peer, None)
        if old is not None:
            self._sum -= old
            self._sumsq -= old * old

    # -- queries ------------------------------------------------------------
    def get(self, peer: str, default: float = 0.0) -> float:
        return self._loads.get(peer, default)

    def __contains__(self, peer: str) -> bool:
        return peer in self._loads

    def __len__(self) -> int:
        return len(self._loads)

    def peers(self) -> list[str]:
        return list(self._loads)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._loads)

    def fairness(self) -> float:
        """Current fairness index of the distribution."""
        n = len(self._loads)
        if n == 0:
            raise ValueError("fairness of an empty load distribution")
        if self._sumsq <= 0.0:
            return 1.0
        return (self._sum * self._sum) / (n * self._sumsq)

    def fairness_with_batch(
        self, candidates: Sequence[Mapping[str, float]]
    ) -> np.ndarray:
        """Vectorized what-if fairness for many candidate assignments.

        Semantically identical to calling :meth:`fairness_with` per
        candidate; useful when an exhaustive allocator evaluates
        hundreds of paths at once (vectorize-the-hot-loop, per the
        profiling guides).
        """
        n = len(self._loads)
        if n == 0:
            raise ValueError("fairness of an empty load distribution")
        if not candidates:
            return np.empty(0, dtype=float)
        sums = np.full(len(candidates), self._sum)
        sumsqs = np.full(len(candidates), self._sumsq)
        for i, deltas in enumerate(candidates):
            for peer, delta in deltas.items():
                old = self._loads.get(peer)
                if old is None:
                    continue
                new = max(0.0, old + delta)
                sums[i] += new - old
                sumsqs[i] += new * new - old * old
        out = np.ones(len(candidates), dtype=float)
        nonzero = sumsqs > 0.0
        out[nonzero] = (sums[nonzero] ** 2) / (n * sumsqs[nonzero])
        return out

    def fairness_with(self, deltas: Mapping[str, float]) -> float:
        """Fairness index *if* each peer in *deltas* gained that much load.

        Peers in *deltas* that are not part of the distribution are
        ignored (they belong to another domain).  O(len(deltas)).
        """
        n = len(self._loads)
        if n == 0:
            raise ValueError("fairness of an empty load distribution")
        s, q = self._sum, self._sumsq
        for peer, delta in deltas.items():
            old = self._loads.get(peer)
            if old is None:
                continue
            new = max(0.0, old + delta)
            s += new - old
            q += new * new - old * old
        if q <= 0.0:
            return 1.0
        return (s * s) / (n * q)


def fairness_after_assignment(
    loads: Mapping[str, float] | LoadVector,
    per_peer_delta: Mapping[str, float],
) -> float:
    """Fairness of *loads* after adding *per_peer_delta* (convenience)."""
    vec = loads if isinstance(loads, LoadVector) else LoadVector(loads)
    return vec.fairness_with(per_peer_delta)


def aggregate_path_deltas(
    pairs: Iterable[tuple[str, float]],
) -> Dict[str, float]:
    """Sum per-peer load deltas over (peer, delta) pairs of a path."""
    out: Dict[str, float] = {}
    for peer, delta in pairs:
        out[peer] = out.get(peer, 0.0) + delta
    return out

"""The Resource Manager's information base (paper §3.1).

Holds, per domain: the peer roster with their last load reports, the
data objects and services at each peer, the resource graph, the service
graphs of running tasks, and the summaries received from other domains.

Because load reports arrive only every *update period*, the info base
additionally tracks **projected load**: the load deltas of tasks this RM
has allocated whose effect is not yet visible in reports.  Projections
expire at the task's deadline (or are released on completion), so a
crashed session cannot pin phantom load forever.  ``effective_load`` =
reported + live projections; this is the load the allocator and the
fairness index operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.common.errors import UnknownPeer
from repro.core.fairness import LoadVector
from repro.graphs.resource_graph import ResourceGraph, ServiceEdge
from repro.graphs.service_graph import ServiceGraph
from repro.monitoring.profiler import LoadReport


@dataclass
class PeerRecord:
    """Everything the RM knows about one domain peer (§3.1 items 2-6)."""

    peer_id: str
    power: float
    bandwidth: float
    uptime_score: float = 1.0
    #: Data objects stored at the peer (O_ij), by name.
    objects: Set[str] = field(default_factory=set)
    #: Services the peer offers (S_ij), by service id.
    services: Set[str] = field(default_factory=set)
    last_report: Optional[LoadReport] = None
    reported_at: float = -1.0

    def clone(self) -> "PeerRecord":
        """A copy safe to mutate independently (backup replication).

        The set fields are copied; the immutable :class:`LoadReport`
        snapshot is shared.
        """
        return PeerRecord(
            peer_id=self.peer_id,
            power=self.power,
            bandwidth=self.bandwidth,
            uptime_score=self.uptime_score,
            objects=set(self.objects),
            services=set(self.services),
            last_report=self.last_report,
            reported_at=self.reported_at,
        )

    @property
    def reported_load(self) -> float:
        """Latest reported l_i (0 before any report)."""
        return self.last_report.load if self.last_report else 0.0

    @property
    def reported_bw(self) -> float:
        return self.last_report.bw_used if self.last_report else 0.0


@dataclass
class _Projection:
    task_id: str
    peer_id: str
    delta: float
    expires_at: float


class DomainInfoBase:
    """Domain-level state maintained by a Resource Manager."""

    def __init__(self, domain_id: str, rm_id: str) -> None:
        self.domain_id = domain_id
        self.rm_id = rm_id
        self.peers: Dict[str, PeerRecord] = {}
        self.resource_graph = ResourceGraph()
        #: Service graphs of currently executing tasks, by task id (§3.1-7).
        self.service_graphs: Dict[str, ServiceGraph] = {}
        self._projections: Dict[str, List[_Projection]] = {}
        # Hot-path caches over the projections.  ``_proj_cache`` holds
        # (delta_sum, earliest_expiry) per peer so effective_load — the
        # single most-called method in large runs — avoids re-filtering
        # and re-summing an unchanged projection list; entries are
        # dropped on any mutation and ignored once ``now`` reaches the
        # earliest expiry.  ``_task_peers`` indexes task -> peer ids so
        # release_projection does not scan every peer's list.
        self._proj_cache: Dict[str, tuple] = {}
        self._task_peers: Dict[str, Set[str]] = {}
        #: Optional :class:`~repro.core.control.reputation
        #: .ReputationEngine` attached when the RM runs with
        #: ``enable_defense``; ``None`` keeps effective_load's behavior
        #: (and the trajectory goldens) byte-identical.
        self.reputation: Optional[Any] = None
        #: Summaries received from other domains: domain_id -> summary.
        self.remote_summaries: Dict[str, Any] = {}
        #: When each remote summary's content was last received/refreshed
        #: (gossip receipt time), for redirect staleness bounds.
        self.summary_received_at: Dict[str, float] = {}

    # -- roster -------------------------------------------------------------
    def add_peer(self, record: PeerRecord) -> None:
        """Register a peer that joined the domain."""
        if record.peer_id in self.peers:
            raise ValueError(f"peer {record.peer_id} already in domain")
        self.peers[record.peer_id] = record

    def remove_peer(self, peer_id: str) -> List[ServiceEdge]:
        """Drop a departed peer; prune its resource-graph edges (§4.1).

        Returns the removed edges so the RM can find interrupted tasks.
        """
        if peer_id not in self.peers:
            raise UnknownPeer(peer_id)
        del self.peers[peer_id]
        self._projections.pop(peer_id, None)
        self._proj_cache.pop(peer_id, None)
        if self.reputation is not None:
            self.reputation.forget(peer_id)
        return self.resource_graph.remove_peer(peer_id)

    def has_peer(self, peer_id: str) -> bool:
        return peer_id in self.peers

    def peer(self, peer_id: str) -> PeerRecord:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise UnknownPeer(peer_id) from None

    @property
    def n_peers(self) -> int:
        return len(self.peers)

    # -- load view ------------------------------------------------------------
    def update_from_report(self, report: LoadReport) -> None:
        """Fold in a load update from a peer's Profiler."""
        rec = self.peer(report.peer_id)
        rec.last_report = report
        rec.reported_at = report.time

    def project_allocation(
        self,
        task_id: str,
        per_peer_delta: Dict[str, float],
        expires_at: float,
    ) -> None:
        """Record the expected load of a freshly allocated task."""
        for peer_id, delta in per_peer_delta.items():
            if peer_id not in self.peers:
                continue
            self._projections.setdefault(peer_id, []).append(
                _Projection(task_id, peer_id, delta, expires_at)
            )
            self._proj_cache.pop(peer_id, None)
            self._task_peers.setdefault(task_id, set()).add(peer_id)

    def release_projection(self, task_id: str) -> None:
        """Drop a task's projected load (on completion/failure)."""
        for peer_id in self._task_peers.pop(task_id, ()):
            plist = self._projections.get(peer_id)
            if not plist:
                continue
            kept = [p for p in plist if p.task_id != task_id]
            if len(kept) != len(plist):
                if kept:
                    self._projections[peer_id] = kept
                else:
                    # Drop drained keys outright: a long churn run must
                    # not accumulate empty-list residue per dead peer.
                    del self._projections[peer_id]
                self._proj_cache.pop(peer_id, None)

    def effective_load(self, peer_id: str, now: float) -> float:
        """Reported load plus live projections for *peer_id*."""
        # peer() and the reported_load property are inlined: this is the
        # single most-called method in large runs.
        rec = self.peers.get(peer_id)
        if rec is None:
            raise UnknownPeer(peer_id)
        report = rec.last_report
        load = report.load if report is not None else 0.0
        if self.reputation is not None:
            load += self.reputation.load_penalty(peer_id, rec, now)
        plist = self._projections.get(peer_id)
        if not plist:
            return load
        cached = self._proj_cache.get(peer_id)
        if cached is not None and now < cached[1]:
            return load + cached[0]
        live = [p for p in plist if p.expires_at > now]
        if len(live) != len(plist):
            if not live:
                del self._projections[peer_id]
                self._proj_cache.pop(peer_id, None)
                return load
            self._projections[peer_id] = live
        total = sum(p.delta for p in live)
        self._proj_cache[peer_id] = (
            total, min(p.expires_at for p in live)
        )
        return load + total

    def projected_load(self, peer_id: str, now: float) -> float:
        """This RM's own live allocation projections for *peer_id*.

        Evidence for the reputation engine: work the RM assigned whose
        effect a lying report cannot argue away.  Read-only (no sweep)
        so it never perturbs the ``effective_load`` caches.
        """
        plist = self._projections.get(peer_id)
        if not plist:
            return 0.0
        return sum(p.delta for p in plist if p.expires_at > now)

    def load_vector(self, now: float) -> LoadVector:
        """Effective loads of all domain peers (the allocator's view)."""
        return LoadVector(
            {pid: self.effective_load(pid, now) for pid in self.peers}
        )

    def utilization_vector(self, now: float) -> Dict[str, float]:
        """Effective utilization (load / power) per peer.

        Claimed power is clamped away from zero: a join record claiming
        no capacity must read as "infinitely overloaded", not crash the
        gossip publisher with a ZeroDivisionError.
        """
        return {
            pid: self.effective_load(pid, now) / max(rec.power, 1e-9)
            for pid, rec in self.peers.items()
        }

    def mean_utilization(self, now: float) -> float:
        """Mean of :meth:`utilization_vector` without building the dict
        (gossip publishes this every period, for every RM)."""
        peers = self.peers
        if not peers:
            return 0.0
        total = 0.0
        for pid, rec in peers.items():
            total += self.effective_load(pid, now) / max(rec.power, 1e-9)
        return total / len(peers)

    # -- objects & services ------------------------------------------------------
    def peers_with_object(self, name: str) -> List[str]:
        """Which peers store a data object (for source selection)."""
        return [
            pid for pid, rec in self.peers.items() if name in rec.objects
        ]

    def all_objects(self) -> Set[str]:
        out: Set[str] = set()
        for rec in self.peers.values():
            out |= rec.objects
        return out

    def all_services(self) -> Set[str]:
        out: Set[str] = set()
        for rec in self.peers.values():
            out |= rec.services
        return out

    # -- running tasks --------------------------------------------------------------
    def register_service_graph(self, graph: ServiceGraph) -> None:
        self.service_graphs[graph.task_id] = graph

    def drop_service_graph(self, task_id: str) -> Optional[ServiceGraph]:
        return self.service_graphs.pop(task_id, None)

    def tasks_using_peer(self, peer_id: str) -> List[ServiceGraph]:
        """Running tasks whose service graph involves *peer_id* (§4.1)."""
        return [
            g for g in self.service_graphs.values() if g.uses_peer(peer_id)
        ]

    # -- graph maintenance -------------------------------------------------------
    def register_service_instance(
        self,
        src: Hashable,
        dst: Hashable,
        service_id: str,
        peer_id: str,
        work: float,
        out_bytes: float = 0.0,
        edge_id: Optional[str] = None,
    ) -> ServiceEdge:
        """Add a hosted service instance to the resource graph + roster."""
        rec = self.peer(peer_id)
        edge = self.resource_graph.add_service(
            src, dst, service_id, peer_id, work, out_bytes, edge_id=edge_id
        )
        rec.services.add(service_id)
        return edge

    def note_summary(self, rm_id: str, summary: Any, now: float) -> None:
        """Store a remote domain's summary, stamping its receipt time."""
        self.remote_summaries[rm_id] = summary
        self.summary_received_at[rm_id] = now

    def summary_age(self, rm_id: str, now: float) -> float:
        """Age of the held summary from *rm_id* (0 if never stamped).

        Summaries installed without a receipt stamp (hand-wired tests,
        restored snapshots from older peers) count as fresh — staleness
        bounds only ever *narrow* behavior where gossip is live.
        """
        received = self.summary_received_at.get(rm_id)
        if received is None:
            return 0.0
        return now - received

    def staleness(self, peer_id: str, now: float) -> float:
        """Age of the newest report from *peer_id* (inf before the first)."""
        rec = self.peer(peer_id)
        if rec.reported_at < 0:
            return float("inf")
        return now - rec.reported_at

    def __repr__(self) -> str:
        return (
            f"<DomainInfoBase {self.domain_id} rm={self.rm_id} "
            f"peers={len(self.peers)} tasks={len(self.service_graphs)}>"
        )

"""The task allocation algorithm of Figure 3.

BFS over the resource graph from ``v_init`` to ``v_sol``; prefixes that
cannot meet the requirement set ``q`` are pruned; among complete
candidates that satisfy ``q``, the one maximizing the Jain fairness
index of the post-assignment load distribution wins.

The *selection rule* is pluggable (``selector``) so the baselines of
experiment E1/E2 — random, first-feasible, least-loaded — share the
identical search and feasibility machinery and differ **only** in the
choice among feasible candidates, which is precisely the paper's design
choice under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.common.errors import NoFeasibleAllocation
from repro.core.estimate import CompletionTimeEstimator
from repro.core.fairness import LoadVector
from repro.core.info_base import DomainInfoBase
from repro.graphs.resource_graph import ServiceEdge
from repro.graphs.search import iter_paths
from repro.net.network import Network
from repro.tasks.task import ApplicationTask


@dataclass
class Candidate:
    """One feasible allocation candidate.

    ``max_post_util`` (the highest post-assignment utilization among the
    touched peers) is precomputed so fairness-blind baseline selectors
    (greedy least-loaded) can share the identical search machinery.
    """

    path: List[ServiceEdge]
    fairness: float
    est_time: float
    deltas: Dict[str, float]
    max_post_util: float = 0.0

    @property
    def edge_ids(self) -> List[str]:
        return [e.edge_id for e in self.path]

    def peers(self) -> List[str]:
        out: List[str] = []
        for e in self.path:
            if e.peer_id not in out:
                out.append(e.peer_id)
        return out


#: Picks the winning candidate from a non-empty list.
Selector = Callable[[List[Candidate]], Candidate]


def select_max_fairness(candidates: List[Candidate]) -> Candidate:
    """The paper's rule: maximize post-assignment fairness (Fig. 3)."""
    best = candidates[0]
    for cand in candidates[1:]:
        if cand.fairness > best.fairness:
            best = cand
    return best


@dataclass
class AllocationResult:
    """Outcome of a successful allocation."""

    task_id: str
    path: List[ServiceEdge]
    fairness: float
    est_time: float
    deltas: Dict[str, float]
    n_candidates: int
    n_examined: int

    @property
    def edge_ids(self) -> List[str]:
        return [e.edge_id for e in self.path]

    def allocation_pairs(self) -> List[tuple[str, str]]:
        return [(e.service_id, e.peer_id) for e in self.path]


@dataclass
class Allocator:
    """The Figure-3 allocation algorithm with pluggable selection.

    Parameters
    ----------
    estimator:
        Completion-time estimator (feasibility of ``q``).
    visited_policy:
        ``"paper"`` (Fig-3 BFS) or ``"exhaustive"`` (all simple paths).
    selector:
        Choice rule among feasible candidates; defaults to the paper's
        fairness maximization.
    max_expansions / max_candidates:
        Search budgets.
    """

    estimator: CompletionTimeEstimator = field(
        default_factory=CompletionTimeEstimator
    )
    visited_policy: str = "paper"
    selector: Selector = select_max_fairness
    max_expansions: int = 100_000
    max_candidates: int = 10_000

    def allocate(
        self,
        info: DomainInfoBase,
        net: Network,
        task: ApplicationTask,
        v_init: Hashable,
        v_sol: Hashable,
        source_peer: str,
        sink_peer: str,
        in_bytes: float,
        now: float,
        loads: Optional[LoadVector] = None,
        work_scale: float = 1.0,
    ) -> AllocationResult:
        """Run the allocation for *task*.

        Raises
        ------
        NoFeasibleAllocation
            With ``reason="no_path"`` when the resource graph offers no
            route at all, or ``reason="qos"`` when routes exist but none
            satisfies the requirement set (the admission layer treats
            these differently — a missing service must be *redirected*
            by summary lookup; an overload may be *retried/redirected*
            too but signals domain saturation).
        """
        load_view = loads if loads is not None else info.load_vector(now)
        # The remaining time budget: equals the relative QoS deadline for
        # a fresh submission, shrinks for redirected / repaired tasks.
        deadline = task.absolute_deadline - now
        if deadline <= 0:
            raise NoFeasibleAllocation(task.task_id, reason="qos")
        candidates: List[Candidate] = []
        n_examined = 0
        any_path = False
        budget = deadline * (1.0 - self.estimator.safety_margin)

        # Incremental prefix-cost cache: BFS extends prefixes one edge
        # at a time, so each prefix's lower-bound time is its parent's
        # plus one hop — O(1) per check instead of re-walking the whole
        # prefix (profiling: prefix re-estimation dominated allocation).
        # Keyed by edge-id tuple; value = (elapsed, carried_bytes).
        prefix_cost: dict = {(): (0.0, in_bytes)}

        def prefix_ok(prefix: Sequence[ServiceEdge]) -> bool:
            if not prefix:
                return True
            key = tuple([e.edge_id for e in prefix])
            cached = prefix_cost.get(key)
            if cached is None:
                parent = prefix_cost.get(key[:-1])
                edge = prefix[-1]
                if parent is None or not info.has_peer(edge.peer_id):
                    # Parent itself was infeasible/unknown, or the peer
                    # vanished: recompute from scratch as a fallback.
                    elapsed = self.estimator.estimate_path(
                        info, net, list(prefix), now, source_peer,
                        prefix[-1].peer_id, in_bytes, work_scale,
                    )
                    carried = prefix[-1].out_bytes * work_scale
                else:
                    elapsed, carried = parent
                    prev_peer = (
                        prefix[-2].peer_id if len(prefix) > 1
                        else source_peer
                    )
                    elapsed += self.estimator.transfer_time(
                        net, prev_peer, edge.peer_id, carried
                    )
                    elapsed += self.estimator.service_time(
                        info, edge, now, work_scale
                    )
                    carried = edge.out_bytes * work_scale
                cached = (elapsed, carried)
                prefix_cost[key] = cached
            return cached[0] <= budget

        for path in iter_paths(
            info.resource_graph,
            v_init,
            v_sol,
            visited_policy=self.visited_policy,
            feasible=prefix_ok,
            max_expansions=self.max_expansions,
        ):
            any_path = True
            n_examined += 1
            # Open-coded estimator.feasible(prefix=False) so the path
            # estimate is computed once and reused as ``est`` (deadline
            # positivity was checked above; ``budget`` is the same
            # margin-scaled bound feasible() applies).
            est = self.estimator.estimate_path(
                info, net, path, now, source_peer, sink_peer, in_bytes,
                work_scale,
            )
            if est > budget or self.estimator.path_overloads(
                info, path, now, deadline, work_scale
            ):
                continue
            deltas = self.estimator.path_load_deltas(
                path, deadline, work_scale
            )
            fairness = load_view.fairness_with(deltas)
            max_post_util = 0.0
            for peer_id, delta in deltas.items():
                power = info.peer(peer_id).power
                post = (load_view.get(peer_id) + delta) / power
                max_post_util = max(max_post_util, post)
            candidates.append(
                Candidate(path, fairness, est, deltas, max_post_util)
            )
            if len(candidates) >= self.max_candidates:
                break

        if not candidates:
            # Distinguish "no route exists at all" from "routes exist but
            # none meets q": prefix pruning may have hidden every route,
            # so re-probe without the QoS predicate.
            if not any_path:
                probe = iter_paths(
                    info.resource_graph, v_init, v_sol,
                    visited_policy=self.visited_policy,
                    max_expansions=self.max_expansions,
                )
                any_path = next(iter(probe), None) is not None
            raise NoFeasibleAllocation(
                task.task_id, reason="qos" if any_path else "no_path"
            )
        winner = self.selector(candidates)
        return AllocationResult(
            task_id=task.task_id,
            path=winner.path,
            fairness=winner.fairness,
            est_time=winner.est_time,
            deltas=winner.deltas,
            n_candidates=len(candidates),
            n_examined=n_examined,
        )

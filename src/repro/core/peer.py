"""A processing peer: network endpoint + CPU + Profiler + hosted services.

Each peer runs the three per-processor components of §2: the Connection
Manager role is played by the :class:`~repro.net.node.NetNode` plumbing,
the **Profiler** measures load and reports it to the RM, and the **Local
Scheduler** (an LLS :class:`~repro.scheduling.Processor` by default)
orders the service jobs that sessions drop onto the CPU.

Peers execute service chains hop by hop: a ``STREAM`` message carrying
the task's data arrives, the peer runs its step as a CPU job, then
forwards the result to the next hop (or the sink).  Progress
(``STEP_DONE``) and completion (``TASK_DONE``) reports flow back to the
coordinating RM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro import telemetry
from repro.core import protocol
from repro.core.session import ComposeOrder
from repro.media.objects import MediaObject
from repro.monitoring.profiler import Profiler
from repro.net.connections import ConnectionManager
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetNode
from repro.scheduling.job import Job
from repro.scheduling.policies import SchedulingPolicy, make_policy
from repro.scheduling.processor import Processor
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.trace import Tracer


@dataclass
class PeerConfig:
    """Static peer capabilities (heterogeneous across the population)."""

    power: float = 10.0
    bandwidth: float = 1.25e6
    uptime_score: float = 1.0
    scheduling_policy: str = "LLS"
    quantum: float = 0.1
    #: Connection-slot budget ("limited by the resources at the peer").
    max_connections: int = 32
    profiler_update_period: float = 2.0
    profiler_sample_period: float = 0.5
    profiler_alpha: float = 0.4
    #: §4.4 QoS-adaptive reporting: busy peers report faster.
    profiler_adaptive: bool = False

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ValueError(f"power must be positive, got {self.power}")
        if self.bandwidth <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )


class Peer(NetNode):
    """A domain member peer.

    Parameters
    ----------
    env, network:
        Simulation substrate.
    peer_id:
        Unique id.
    config:
        Capabilities and component periods.
    rm_id:
        The peer's current domain Resource Manager (may change on
        failover / domain migration).
    policy:
        Optional pre-built scheduling policy (overrides config name).
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        peer_id: str,
        config: Optional[PeerConfig] = None,
        rm_id: Optional[str] = None,
        policy: Optional[SchedulingPolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(env, network, peer_id)
        self.config = config or PeerConfig()
        self.rm_id = rm_id
        self.tracer = tracer
        self.processor = Processor(
            env,
            peer_id,
            power=self.config.power,
            policy=policy or make_policy(self.config.scheduling_policy),
            quantum=self.config.quantum,
            tracer=tracer,
        )
        self.profiler = Profiler(
            env,
            self.processor,
            report_fn=self._send_load_update,
            update_period=self.config.profiler_update_period,
            sample_period=self.config.profiler_sample_period,
            alpha=self.config.profiler_alpha,
            adaptive=self.config.profiler_adaptive,
        )
        #: Media objects stored locally, by name (O_i of §3.2).
        self.objects: Dict[str, MediaObject] = {}
        #: Hosted service types by service id (S_i of §3.2).
        self.services: Dict[str, Any] = {}
        #: Active compose orders by (task_id); newest epoch wins.
        self._orders: Dict[str, ComposeOrder] = {}
        #: Jobs currently on the CPU per task (for cancellation).
        self._task_jobs: Dict[str, list[Job]] = {}
        #: §3.2 item 5 — current dependencies per task: the peers this
        #: peer is receiving services from ("up") / offering to ("down").
        self._deps: Dict[str, Dict[str, set]] = {}
        #: The Connection Manager of §2: bounded open connections.
        self.connections = ConnectionManager(
            self, max_connections=self.config.max_connections
        )
        self.alive = True

        self.on(protocol.COMPOSE, self._handle_compose)
        self.on(protocol.START_STREAM, self._handle_start_stream)
        self.on(protocol.STREAM, self._handle_stream)
        self.on(protocol.CANCEL_TASK, self._handle_cancel_task)
        self.on(protocol.RM_TAKEOVER, self._handle_rm_takeover)

    # -- hosting ------------------------------------------------------------
    def store_object(self, obj: MediaObject) -> None:
        """Make a media object locally available."""
        self.objects[obj.name] = obj

    def host_service(self, service_id: str, spec: Any = None) -> None:
        """Offer a service type on this peer."""
        self.services[service_id] = spec

    #: Class-wide count of peer deaths.  ``alive`` flips False only in
    #: :meth:`fail` below, so any cache derived from liveness can use
    #: this epoch (plus a membership version) as its validity key.
    _death_epoch = 0

    # -- failure & departure ----------------------------------------------------
    def fail(self) -> None:
        """Crash: drop off the network, kill all local work."""
        if not self.alive:
            return
        self.alive = False
        Peer._death_epoch += 1
        self.connections.close_all()
        self.network.set_down(self.node_id)
        self.processor.stop()
        self.profiler.stop()
        self.shutdown()

    def leave(self) -> None:
        """Graceful departure: tell the RM first, then go down."""
        if not self.alive:
            return
        if self.rm_id:
            self.send(
                protocol.PEER_LEAVE,
                self.rm_id,
                {"peer_id": self.node_id},
                size=protocol.size_of(protocol.PEER_LEAVE),
            )
        self.fail()

    # -- outbound ---------------------------------------------------------------
    def current_dependencies(self) -> tuple[set, set]:
        """(upstream, downstream) peers across all active sessions."""
        up: set = set()
        down: set = set()
        for dep in self._deps.values():
            up |= dep["up"]
            down |= dep["down"]
        up.discard(self.node_id)
        down.discard(self.node_id)
        return up, down

    def _dep(self, task_id: str) -> Dict[str, set]:
        dep = self._deps.get(task_id)
        if dep is None:
            dep = self._deps[task_id] = {"up": set(), "down": set()}
        return dep

    def _send_load_update(self, report) -> None:
        if not self.alive or not self.rm_id:
            return
        up, down = self.current_dependencies()
        report.dependencies = len(up) + len(down)
        self.send(
            protocol.LOAD_UPDATE,
            self.rm_id,
            {"report": report},
            size=protocol.size_of(protocol.LOAD_UPDATE),
        )

    def submit_task(
        self,
        name: str,
        goal_state: Any,
        deadline: float,
        importance: float = 1.0,
        timeout: float = 30.0,
    ) -> Generator[Event, Any, Message]:
        """Submit a query to the RM; returns the TASK_ACK reply.

        Use as ``reply = yield from peer.submit_task(...)``; raises
        :class:`~repro.net.node.RPCTimeout` if the RM is unreachable.
        """
        if not self.rm_id:
            raise RuntimeError(f"{self.node_id} has no resource manager")
        reply = yield from self.rpc(
            protocol.TASK_REQUEST,
            self.rm_id,
            {
                "name": name,
                "goal_state": goal_state,
                "deadline": deadline,
                "importance": importance,
                "origin": self.node_id,
            },
            timeout=timeout,
            size=protocol.size_of(protocol.TASK_REQUEST),
        )
        return reply

    def request_qos_change(
        self, task_id: str, new_deadline_abs: float,
        new_importance: Optional[float] = None,
    ) -> None:
        """§4.5: ask the RM to relax/tighten a running task's QoS.

        ``new_deadline_abs`` is the new *absolute* completion deadline.
        Users "may reduce the requested bit-rate or relax their
        deadlines to cope with congested networks, or increase the QoS
        parameters if they assume resources are abundant".
        """
        if not self.rm_id:
            raise RuntimeError(f"{self.node_id} has no resource manager")
        payload = {
            "task_id": task_id,
            "deadline_abs": new_deadline_abs,
            "origin": self.node_id,
        }
        if new_importance is not None:
            payload["importance"] = new_importance
        self.send(
            protocol.QOS_UPDATE, self.rm_id, payload,
            size=protocol.size_of(protocol.QOS_UPDATE),
        )

    # -- handlers -----------------------------------------------------------------
    def _handle_compose(self, msg: Message) -> None:
        order: ComposeOrder = msg.payload["order"]
        current = self._orders.get(order.task_id)
        if current is not None and current.epoch > order.epoch:
            return  # stale repair
        self._orders[order.task_id] = order
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "peer.compose", peer=self.node_id,
                task=order.task_id, epoch=order.epoch,
            )

    def _handle_start_stream(self, msg: Message) -> None:
        """The RM told us to (re)start emitting a task's data."""
        task_id = msg.payload["task_id"]
        from_step = msg.payload.get("from_step", 0)
        order = self._orders.get(task_id)
        if order is None:
            return
        self._forward_stream(order, from_step)

    def _forward_stream(self, order: ComposeOrder, step_index: int) -> None:
        """Send the data entering *step_index* to the peer hosting it."""
        nbytes = order.bytes_into(step_index)
        if step_index >= len(order.steps):
            dst = order.sink_peer
        else:
            dst = order.steps[step_index].peer_id
        payload = {
            "task_id": order.task_id,
            "step_index": step_index,
            "epoch": order.epoch,
            "from": self.node_id,
        }
        if dst != self.node_id:
            self._dep(order.task_id)["down"].add(dst)
        if dst == self.node_id:
            # Local hop: skip the network, process immediately (spawning
            # the step-execution process, as the dispatcher would).
            result = self._process_stream(payload)
            if result is not None:
                self.env.process(
                    result, name=f"{self.node_id}:local-step"
                )
        else:
            self.connections.ensure(dst)
            self.profiler.note_bytes_out(nbytes)
            self.send(protocol.STREAM, dst, payload, size=max(nbytes, 1.0))

    def _handle_stream(self, msg: Message) -> Optional[Generator]:
        return self._process_stream(msg.payload)

    def _process_stream(
        self, payload: Dict[str, Any]
    ) -> Optional[Generator[Event, Any, None]]:
        task_id = payload["task_id"]
        step_index = payload["step_index"]
        epoch = payload.get("epoch", 0)
        order = self._orders.get(task_id)
        if order is None or epoch < order.epoch:
            return None  # unknown task or stale epoch: drop
        if step_index >= len(order.steps):
            # We are the sink: the task is complete.
            self._task_complete(order)
            return None
        step = order.steps[step_index]
        if step.peer_id != self.node_id:
            return None  # mis-delivered (stale repair); drop
        upstream = payload.get("from")
        if upstream and upstream != self.node_id:
            self._dep(task_id)["up"].add(upstream)
        return self._run_step(order, step_index)

    def _run_step(
        self, order: ComposeOrder, step_index: int
    ) -> Generator[Event, Any, None]:
        step = order.steps[step_index]
        job = Job(
            work=step.work,
            abs_deadline=order.abs_deadline,
            release=self.env.now,
            importance=order.importance,
            task_id=order.task_id,
            service_id=step.service_id,
        )
        self._task_jobs.setdefault(order.task_id, []).append(job)
        started = self.env.now
        tel = telemetry.current()
        span = None
        if tel.enabled:
            trace_id = f"task:{order.task_id}"
            parent = tel.tracer.open_span(trace_id)
            span = tel.tracer.start_span(
                step.service_id, kind=telemetry.SERVICE, node=self.node_id,
                trace_id=trace_id,
                parent_id=parent.span_id if parent else None,
                step_index=step_index, work=step.work, epoch=order.epoch,
            )
        done = self.processor.submit(job)
        yield done
        jobs = self._task_jobs.get(order.task_id)
        if jobs and job in jobs:
            jobs.remove(job)
        if job.cancelled or not self.alive:
            if span is not None:
                tel.tracer.end_span(span, status="cancelled")
            return
        exec_time = self.env.now - started
        if span is not None:
            wait = (
                job.started_at - started
                if job.started_at is not None else 0.0
            )
            tel.tracer.end_span(span, status="ok", queued=wait)
            tel.metrics.histogram(
                "repro_sched_service_time_seconds", service=step.service_id
            ).observe(exec_time)
        self.profiler.observe_service(step.service_id, exec_time, step.work)
        current = self._orders.get(order.task_id)
        if current is None or current.epoch != order.epoch:
            return  # repaired away while we were computing
        # Report progress, then push the data onward.
        self.send(
            protocol.STEP_DONE,
            order.rm_id,
            {
                "task_id": order.task_id,
                "step_index": step_index,
                "peer_id": self.node_id,
                "epoch": order.epoch,
                # Measured computation interval (§3.1 item 7: the RM's
                # service graphs carry run-time collected timings).
                "started": started,
                "finished": self.env.now,
            },
            size=protocol.size_of(protocol.STEP_DONE),
        )
        self._forward_stream(order, step_index + 1)

    def _task_complete(self, order: ComposeOrder) -> None:
        self._orders.pop(order.task_id, None)
        self._deps.pop(order.task_id, None)
        self.send(
            protocol.TASK_DONE,
            order.rm_id,
            {
                "task_id": order.task_id,
                "completed_at": self.env.now,
                "sink": self.node_id,
            },
            size=protocol.size_of(protocol.TASK_DONE),
        )
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "peer.task_complete", peer=self.node_id,
                task=order.task_id,
            )

    def _handle_cancel_task(self, msg: Message) -> None:
        task_id = msg.payload["task_id"]
        self._orders.pop(task_id, None)
        self._deps.pop(task_id, None)
        for job in self._task_jobs.pop(task_id, []):
            self.processor.cancel(job, "task cancelled by RM")

    def _handle_rm_takeover(self, msg: Message) -> None:
        """The backup RM took over: re-point our reports (§4.1)."""
        self.rm_id = msg.payload["rm_id"]

    def __repr__(self) -> str:
        return (
            f"<Peer {self.node_id} power={self.config.power:g} "
            f"rm={self.rm_id} {'up' if self.alive else 'down'}>"
        )

"""Session state shared between the RM and the participating peers.

A *session* is the execution of one service graph: the source peer
pushes the object through the chain of transcoding steps to the sink
(Fig. 2(C)).  Execution is store-and-forward, matching the paper's
execution-time model (§3.3: the sum of processing and communication
times).

The :class:`ComposeOrder` is the content of the RM's graph-composition
message (§4.3): every participant receives the full chain, so any peer
holding the intermediate data can resume the stream after a repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.graphs.service_graph import ServiceGraph, ServiceStep


@dataclass
class ComposeOrder:
    """The RM's instruction describing one task's service chain.

    Attributes
    ----------
    task_id, rm_id:
        The task and the RM coordinating it (TASK_DONE goes there).
    source_peer / sink_peer:
        Stream endpoints.
    steps:
        The full ordered chain.
    abs_deadline / importance:
        QoS data each peer's Local Scheduler needs for its jobs.
    in_bytes:
        Size of the source object (first transfer).
    resume_from:
        First step index to execute (0 for a fresh start; >0 after a
        repair resumes mid-chain).
    epoch:
        Repair generation; peers ignore stale stream data from an
        earlier epoch so a repaired chain cannot race its dead
        predecessor.
    """

    task_id: str
    rm_id: str
    source_peer: str
    sink_peer: str
    steps: List[ServiceStep]
    abs_deadline: float
    importance: float
    in_bytes: float
    resume_from: int = 0
    epoch: int = 0

    def as_payload(self) -> Dict[str, Any]:
        return {"order": self}

    def next_peer_after(self, index: int) -> str:
        """Destination of the data leaving step *index*."""
        if index + 1 < len(self.steps):
            return self.steps[index + 1].peer_id
        return self.sink_peer

    def bytes_into(self, index: int) -> float:
        """Size of the data entering step *index*."""
        if index == 0:
            return self.in_bytes
        return self.steps[index - 1].out_bytes


@dataclass
class SessionState:
    """RM-side bookkeeping for one running task."""

    task_id: str
    graph: ServiceGraph
    order: ComposeOrder
    started_at: float
    #: Highest contiguous completed step index (-1: none yet).
    last_step_done: int = -1
    #: Which peer currently holds the newest intermediate data.
    data_holder: str = ""
    epoch: int = 0
    repairs: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    def note_step_done(self, index: int, peer_id: str) -> None:
        """Record step progress (STEP_DONE handling)."""
        if index > self.last_step_done:
            self.last_step_done = index
            self.data_holder = peer_id

    def resume_point(self) -> int:
        """First step that still needs to run."""
        return self.last_step_done + 1

    def resume_source(self) -> Optional[str]:
        """Peer that should re-emit the data on a repair, if known."""
        if self.last_step_done < 0:
            return self.graph.source_peer
        return self.data_holder or None

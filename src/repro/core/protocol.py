"""Protocol message kinds and payload schemas (peer <-> RM <-> RM).

All payloads are plain dicts of JSON-able values plus task/step objects
where noted; sizes are rough wire estimates that drive transmission
delay and the message-overhead accounting of experiments E4/E7.
"""

from __future__ import annotations

# -- peer -> RM ------------------------------------------------------------
#: Periodic Profiler report; doubles as the peer's liveness heartbeat.
LOAD_UPDATE = "load_update"
#: A user query: run task `name` with QoS q (Fig. 2(A)).
TASK_REQUEST = "task_request"
#: A step of a running task finished at this peer (progress tracking).
STEP_DONE = "step_done"
#: The final stream arrived at the sink: the task is complete.
TASK_DONE = "task_done"
#: Graceful departure announcement.
PEER_LEAVE = "peer_leave"
#: The user changed a running task's QoS requirements (§4.5).
QOS_UPDATE = "qos_update"

# -- RM -> peer ---------------------------------------------------------------
#: Reply to TASK_REQUEST: accepted (with allocation) or rejected.
TASK_ACK = "task_ack"
#: Graph-composition message: the service graph a participant is part of.
COMPOSE = "compose"
#: Instruction to (re)start streaming from a given step index.
START_STREAM = "start_stream"
#: Cancel a task's local jobs (reassignment pulled it away).
CANCEL_TASK = "cancel_task"

# -- peer <-> peer ------------------------------------------------------------
#: A chunk of stream data moving along the service chain.
STREAM = "stream"

# -- RM <-> RM -----------------------------------------------------------------
#: A task redirected from an overloaded/uncovered domain (§4.5).
TASK_REDIRECT = "task_redirect"
#: Gossip digest exchange (inter-domain summaries, §4.4).
GOSSIP_DIGEST = "gossip_digest"
#: Gossip payload: summaries newer than the digest.
GOSSIP_SUMMARIES = "gossip_summaries"
#: Primary -> backup state replication (§4.1).
RM_SYNC = "rm_sync"
#: Backup announcing takeover to domain members (§4.1).
RM_TAKEOVER = "rm_takeover"

# -- overlay management ----------------------------------------------------------
JOIN_REQUEST = "join_request"
JOIN_ACK = "join_ack"

#: Nominal wire sizes (bytes) per message kind, for overhead accounting.
MESSAGE_SIZES = {
    LOAD_UPDATE: 256.0,
    TASK_REQUEST: 512.0,
    STEP_DONE: 96.0,
    TASK_DONE: 128.0,
    PEER_LEAVE: 64.0,
    QOS_UPDATE: 96.0,
    TASK_ACK: 256.0,
    COMPOSE: 1024.0,
    START_STREAM: 128.0,
    CANCEL_TASK: 96.0,
    TASK_REDIRECT: 768.0,
    GOSSIP_DIGEST: 256.0,
    GOSSIP_SUMMARIES: 2048.0,
    RM_SYNC: 4096.0,
    RM_TAKEOVER: 128.0,
    JOIN_REQUEST: 256.0,
    JOIN_ACK: 256.0,
}


def size_of(kind: str) -> float:
    """Nominal wire size for *kind* (default 256 B)."""
    return MESSAGE_SIZES.get(kind, 256.0)

"""The RM's task registry: lifecycle state, sessions, failover snapshots.

Owns every task the RM has seen and the session state of the running
ones, drives the terminal transitions (complete / fail / lost), and
produces the state snapshots replicated to the backup RM (§4.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro import telemetry
from repro.core import protocol
from repro.core.info_base import DomainInfoBase
from repro.core.session import ComposeOrder, SessionState
from repro.tasks.task import ApplicationTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import ResourceManager


class TaskRegistry:
    """Task lifecycle state for one Resource Manager."""

    def __init__(self, rm: "ResourceManager") -> None:
        self.rm = rm
        #: All tasks this RM has seen, by id.
        self.tasks: Dict[str, ApplicationTask] = {}
        #: Running sessions by task id.
        self.sessions: Dict[str, SessionState] = {}

    # -- lifecycle ----------------------------------------------------------
    def register(self, task: ApplicationTask) -> None:
        self.tasks[task.task_id] = task

    def get(self, task_id: str) -> Optional[ApplicationTask]:
        return self.tasks.get(task_id)

    def session(self, task_id: str) -> Optional[SessionState]:
        return self.sessions.get(task_id)

    def add_session(self, session: SessionState) -> None:
        self.sessions[session.task_id] = session

    def running_sessions(self) -> List[SessionState]:
        return list(self.sessions.values())

    def complete(self, task: ApplicationTask, completed_at: float) -> None:
        """A sink reported TASK_DONE: close the task out."""
        rm = self.rm
        task.mark_done(completed_at)
        self.cleanup(task.task_id)
        rm.stats["completed"] += 1
        if task.outcome is not None and task.outcome.value == "missed":
            rm.stats["missed"] += 1
        rm._emit(task, "completed")

    def fail(self, task: ApplicationTask, reason: str) -> None:
        rm = self.rm
        task.mark_failed(rm.env.now, reason)
        self.cleanup(task.task_id)
        rm.stats["failed"] += 1
        rm._emit(task, "failed")

    def cleanup(self, task_id: str) -> None:
        """Drop a finished/failed task's session, graph, and projection."""
        self.sessions.pop(task_id, None)
        self.rm.info.drop_service_graph(task_id)
        self.rm.info.release_projection(task_id)

    def expire_lost(self, now: float, grace: float) -> None:
        """Declare long-overdue silent tasks lost (monitor duty)."""
        for task_id in list(self.sessions):
            task = self.tasks.get(task_id)
            if task is None:
                self.sessions.pop(task_id, None)
                continue
            if now > task.absolute_deadline + grace:
                self.fail(task, "lost (no completion)")

    # -- failover support ---------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Serializable-ish state for backup replication (§4.1).

        Structures are copied shallowly: records and graphs are rebuilt
        on restore, so the backup's post-takeover mutations cannot leak
        back into the dead primary's objects.
        """
        rm = self.rm
        return {
            "domain_id": rm.domain_id,
            "peers": {
                pid: rec.clone() for pid, rec in rm.info.peers.items()
            },
            "object_catalog": dict(rm.object_catalog),
            "resource_graph": rm.info.resource_graph.copy(),
            "tasks": dict(self.tasks),
            "sessions": dict(self.sessions),
            "service_graphs": dict(rm.info.service_graphs),
            "known_rms": dict(rm.known_rms),
            "remote_summaries": dict(rm.info.remote_summaries),
            "summary_received_at": dict(rm.info.summary_received_at),
            "last_seen": dict(rm.last_seen),
        }

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Load a replicated snapshot (backup preparing for takeover)."""
        rm = self.rm
        rm.domain_id = snapshot["domain_id"]
        rm.info = DomainInfoBase(rm.domain_id, rm.node_id)
        # A defense-enabled backup keeps judging with its own engine
        # (trust evidence is per-observer and is not replicated).
        rm.info.reputation = rm.reputation
        for pid, rec in snapshot["peers"].items():
            rm.info.add_peer(rec)
        rm.info.resource_graph = snapshot["resource_graph"]
        rm.info.service_graphs = dict(snapshot["service_graphs"])
        rm.info.remote_summaries = dict(snapshot["remote_summaries"])
        rm.info.summary_received_at = dict(
            snapshot.get("summary_received_at", {})
        )
        rm.object_catalog = dict(snapshot["object_catalog"])
        self.tasks = dict(snapshot["tasks"])
        self.sessions = dict(snapshot["sessions"])
        rm.known_rms = dict(snapshot["known_rms"])
        rm.last_seen = dict(snapshot["last_seen"])

    def takeover(self) -> None:
        """Re-point the domain at this (newly activated) RM (§4.1).

        Tells every member to re-address its reports, then replays each
        running session from the last step this backup saw finish.  Any
        STEP_DONE / TASK_DONE sent while the primary was dead is gone,
        so the replay uses a fresh epoch (stale in-flight work is
        dropped by the peers) and a new compose order naming this RM as
        coordinator; re-running an already-finished suffix is safe — the
        sink completes a task at most once per order.
        """
        rm = self.rm
        for pid in rm.info.peers:
            if pid == rm.node_id:
                continue
            rm.send(
                protocol.RM_TAKEOVER, pid, {"rm_id": rm.node_id},
                size=protocol.size_of(protocol.RM_TAKEOVER),
            )
        for session in self.running_sessions():
            task = self.tasks.get(session.task_id)
            if task is None:
                continue
            graph = session.graph
            resume = session.resume_point()
            holder = session.resume_source() or graph.source_peer
            if not rm.info.has_peer(holder) and holder != rm.node_id:
                holder, resume = graph.source_peer, 0
            session.epoch += 1
            order = ComposeOrder(
                task_id=session.task_id,
                rm_id=rm.node_id,
                source_peer=graph.source_peer,
                sink_peer=graph.sink_peer,
                steps=list(graph.steps),
                abs_deadline=task.absolute_deadline,
                importance=task.qos.importance,
                in_bytes=session.order.in_bytes,
                resume_from=resume,
                epoch=session.epoch,
            )
            session.order = order
            for pid in set(graph.peers()) | {holder}:
                if rm.info.has_peer(pid) or pid == rm.node_id:
                    rm._send_or_local(
                        pid, protocol.COMPOSE, {"order": order},
                        size=protocol.size_of(protocol.COMPOSE),
                    )
            rm._send_or_local(
                holder, protocol.START_STREAM,
                {"task_id": session.task_id, "from_step": resume},
                size=protocol.size_of(protocol.START_STREAM),
            )
        if rm.tracer is not None:
            rm.tracer.record(rm.env.now, "rm.takeover", rm=rm.node_id,
                             domain=rm.domain_id)
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.event(
                "rm.takeover", node=rm.node_id, domain=rm.domain_id
            )

    def __repr__(self) -> str:
        return (
            f"<TaskRegistry tasks={len(self.tasks)} "
            f"sessions={len(self.sessions)}>"
        )

"""Admission control: accept, redirect, or reject a task (§4.3, §4.5).

Runs the capacity/QoS admission decision for each submitted task,
launches the streaming session for accepted ones (graph composition,
Fig. 2), and forwards unplaceable tasks to a better domain using the
gossiped Bloom summaries — skipping domains whose summaries have gone
stale past the configured bound.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.common.errors import NoFeasibleAllocation
from repro.core import protocol
from repro.core.allocation import AllocationResult, Allocator
from repro.core.session import ComposeOrder, SessionState
from repro.graphs.service_graph import ServiceGraph
from repro.media.objects import MediaObject
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control.placement import PlacementEngine
    from repro.core.manager import ResourceManager


class AdmissionController:
    """Decides and executes task admission for one Resource Manager."""

    def __init__(
        self, rm: "ResourceManager", engine: "PlacementEngine"
    ) -> None:
        self.rm = rm
        self.engine = engine

    # -- admission ----------------------------------------------------------
    def admit(self, task: ApplicationTask) -> str:
        """Try to allocate and launch *task*; returns the disposition.

        Dispositions: ``"accepted"``, ``"redirected"``, ``"rejected"``.
        """
        rm = self.rm
        now = rm.env.now
        sources = rm.info.peers_with_object(task.name)
        obj = rm.object_catalog.get(task.name)
        if not sources or obj is None:
            return self.redirect_or_reject(task, reason="no_object")
        if rm.reputation is not None:
            # Quarantined replica holders leave the eligible list while
            # any clean holder remains (last-resort sources still work).
            clean = [
                pid for pid in sources
                if not rm.reputation.is_quarantined(pid, now)
            ]
            if clean:
                sources = clean
        allocator = self._allocator_for(task, now)
        # Prefer the least-loaded replica holder as the stream source.
        source_peer = min(
            sources, key=lambda pid: rm.info.effective_load(pid, now)
        )
        task.initial_state = obj.fmt
        work_scale = obj.duration_s / rm.rm_config.canonical_duration
        task.meta["work_scale"] = work_scale
        if task.initial_state == task.goal_state:
            # Degenerate: no transcoding needed; direct transfer.
            result = None
            path: List[Any] = []
        else:
            try:
                result = self.engine.place(
                    task,
                    v_init=task.initial_state,
                    v_sol=task.goal_state,
                    source_peer=source_peer,
                    sink_peer=task.origin_peer,
                    in_bytes=obj.size_bytes,
                    work_scale=work_scale,
                    allocator=allocator,
                )
            except NoFeasibleAllocation as exc:
                return self.redirect_or_reject(task, reason=exc.reason)
            path = result.path
        self.launch(task, result, path, source_peer, obj)
        return "accepted"

    def _allocator_for(
        self, task: ApplicationTask, now: float
    ) -> Optional[Allocator]:
        """Importance-aware admission (§3.3): the strict-cap variant.

        With importance-aware admission enabled (RMConfig) and the
        domain loaded past the activation threshold, a task less
        important than the running average is allocated under a reduced
        capacity cap — the top slice of every peer stays reserved for
        important work.  Everyone else gets the normal allocator
        (``None`` = the engine's own).
        """
        rm = self.rm
        cfg = rm.rm_config
        if not cfg.importance_admission or not rm.sessions:
            return None
        utils = rm.info.utilization_vector(now)
        if not utils:
            return None
        mean_util = sum(utils.values()) / len(utils)
        if mean_util < cfg.importance_admission_util:
            return None
        running = [
            rm.tasks[tid].qos.importance
            for tid in rm.sessions
            if tid in rm.tasks
        ]
        if not running or task.qos.importance >= (
            sum(running) / len(running)
        ):
            return None
        return self.engine.strict_variant(cfg.low_importance_cap)

    # -- session launch -----------------------------------------------------
    def launch(
        self,
        task: ApplicationTask,
        result: Optional[AllocationResult],
        path: List[Any],
        source_peer: str,
        obj: MediaObject,
    ) -> None:
        """Compose the service chain and start the stream (Fig. 2)."""
        rm = self.rm
        now = rm.env.now
        fairness = (
            result.fairness if result
            else rm.info.load_vector(now).fairness()
        )
        task.mark_allocated(
            [(e.service_id, e.peer_id) for e in path], fairness,
            rm.domain_id,
        )
        graph = ServiceGraph.from_edges(
            task.task_id, path, source_peer, task.origin_peer,
            work_scale=task.meta.get("work_scale", 1.0),
        )
        rm.info.register_service_graph(graph)
        if result is not None:
            rm.info.project_allocation(
                task.task_id, result.deltas, expires_at=task.absolute_deadline
            )
        order = ComposeOrder(
            task_id=task.task_id,
            rm_id=rm.node_id,
            source_peer=source_peer,
            sink_peer=task.origin_peer,
            steps=list(graph.steps),
            abs_deadline=task.absolute_deadline,
            importance=task.qos.importance,
            in_bytes=obj.size_bytes,
            epoch=0,
        )
        session = SessionState(
            task_id=task.task_id, graph=graph, order=order, started_at=now,
        )
        session.data_holder = source_peer
        rm.registry.add_session(session)
        for peer_id in graph.peers():
            rm._send_or_local(
                peer_id, protocol.COMPOSE, {"order": order},
                size=protocol.size_of(protocol.COMPOSE),
            )
        rm._send_or_local(
            source_peer, protocol.START_STREAM,
            {"task_id": task.task_id, "from_step": 0},
            size=protocol.size_of(protocol.START_STREAM),
        )
        task.mark_running()
        rm.stats["admitted"] += 1
        rm._emit(task, "admitted")

    # -- QoS renegotiation ---------------------------------------------------
    def update_qos(self, payload: Dict[str, Any], src: str) -> None:
        """§4.5: a user changed a running task's QoS requirements.

        Only the submitting peer may change a task's QoS.  The new
        deadline is propagated to the session participants via a
        refreshed compose order (same epoch: peers adopt it in place),
        so jobs queued *after* the change are scheduled against the new
        deadline; jobs already on a CPU keep their old one (they were
        released before the user changed their mind).
        """
        rm = self.rm
        task = rm.registry.get(payload["task_id"])
        if task is None or task.state not in (
            TaskState.ALLOCATED, TaskState.RUNNING
        ):
            return
        if payload.get("origin", src) != task.origin_peer:
            return  # only the owner may renegotiate
        new_rel = payload["deadline_abs"] - task.submitted_at
        if new_rel <= 0:
            return  # a deadline already in the past is meaningless
        task.qos = QoSRequirements(
            deadline=new_rel,
            importance=payload.get("importance", task.qos.importance),
            constraints=dict(task.qos.constraints),
        )
        session = rm.registry.session(task.task_id)
        if session is not None:
            session.order.abs_deadline = task.absolute_deadline
            session.order.importance = task.qos.importance
            for peer_id in session.graph.peers():
                if rm.info.has_peer(peer_id) or peer_id == rm.node_id:
                    rm._send_or_local(
                        peer_id, protocol.COMPOSE,
                        {"order": session.order},
                        size=protocol.size_of(protocol.COMPOSE),
                    )
        rm._emit(task, "qos_updated")

    # -- redirection --------------------------------------------------------
    def redirect_or_reject(self, task: ApplicationTask, reason: str) -> str:
        """§4.5: forward to a better domain, or reject."""
        rm = self.rm
        target = self.pick_redirect_target(task)
        if target is not None and task.redirects < rm.rm_config.max_redirects:
            task.redirects += 1
            rm.stats["redirected_out"] += 1
            rm.send(
                protocol.TASK_REDIRECT, target, {"task": task},
                size=protocol.size_of(protocol.TASK_REDIRECT),
            )
            rm._emit(task, "redirected")
            return "redirected"
        task.mark_rejected(rm.env.now, reason=reason)
        rm.stats["rejected"] += 1
        rm._emit(task, "rejected")
        return "rejected"

    def pick_redirect_target(self, task: ApplicationTask) -> Optional[str]:
        """Choose another RM using the gossiped summaries (§4.5).

        Prefers domains whose summary claims the object; among those,
        the least-utilized by summarized mean load.  Falls back to any
        other known RM when no summary matches (the Bloom filter may
        also false-positive — the target then redirects again).

        A summary older than ``RMConfig.redirect_summary_max_age`` is
        no longer *trusted*: its load report and object claim are
        ignored and the domain is demoted to fallback status, exactly
        like an RM we hold no summary for.  ``None`` (the default)
        keeps the paper behavior of trusting any cached report.
        """
        rm = self.rm
        max_age = rm.rm_config.redirect_summary_max_age
        now = rm.env.now
        best: Optional[str] = None
        best_score = float("inf")
        fallback: Optional[str] = None
        for rm_id, _domain in rm.known_rms.items():
            if rm_id == rm.node_id:
                continue
            summary = rm.info.remote_summaries.get(rm_id)
            if summary is None or (
                max_age is not None
                and rm.info.summary_age(rm_id, now) > max_age
            ):
                fallback = fallback or rm_id
                continue
            if not summary.may_have_object(task.name):
                continue
            score = summary.mean_utilization
            if score < best_score:
                best, best_score = rm_id, score
        return best or fallback

"""Reputation-gated load reports: trust scoring for peer self-reports.

The paper's control loop (§3.1, §4.1) trusts peers twice — claimed
power at join time and Profiler LoadReports continuously — and the
adversarial suite quantified the damage: 25% always-idle liars drive
the deadline-miss rate from 0.034 to 0.239 (liar_peers vs
liar_control).  This module is the defense: a per-peer trust score
maintained from evidence the RM *already has*, with no new protocol
traffic.

Three consistency signals, cheapest first:

* **power mismatch** — the power a peer's reports carry vs the power it
  claimed at join time.  A peer whose paperwork disagrees with itself
  is lying about one of the two (the shipped ``constant`` liars inflate
  the join claim 3x but their Profiler reports true capacity).
* **under-reporting** — reported load vs the RM's own live allocation
  projections.  The RM knows what it assigned; a peer that carries a
  domain-significant share of projected work while reporting itself
  (nearly) idle is hiding load.
* **slow completions** — the work/elapsed rate of STEP_DONE reports vs
  the free capacity the peer's reports imply.  A peer that claims to be
  idle but finishes assigned steps far slower than its claimed free
  power can deliver is overloaded regardless of what it reports.

Scoring is an asymmetric EWMA (penalties bite harder than recoveries),
so duty-cycled ``intermittent`` liars sink even though they tell the
truth half the time.  Timing-sensitive signals (under-reporting, slow
completions) only penalize after ``timing_streak`` *consecutive*
divergences, so a few stale reports during an admission burst cannot
tank an honest peer.

Enforcement is a single hook: :meth:`ReputationEngine.load_penalty` is
added to :meth:`~repro.core.info_base.DomainInfoBase.effective_load`
when the engine is attached.  Distrusted peers simply *appear busier*,
so the completion-time estimator, the capacity prune, fairness ranking,
admission source selection and reassignment all steer around them with
no allocator changes.  Quarantined peers appear loaded beyond any
capacity cap (guaranteed infeasible); quarantine is always timed and
expires into a reduced-capacity probation, so an honest peer caught by
a transient is never permanently exiled.

Everything is gated behind ``RMConfig.enable_defense`` (off by
default): with the engine unattached the hot path costs one attribute
read and the event trajectory is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro import telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.info_base import PeerRecord
    from repro.monitoring.profiler import LoadReport

#: Trust states, in descending order of standing.
TRUSTED = "trusted"
SUSPECT = "suspect"
PROBATION = "probation"
QUARANTINED = "quarantined"


@dataclass
class ReputationConfig:
    """Tunables for the report-consistency defense."""

    #: EWMA weight of a divergent observation (pull toward 0).
    alpha_penalty: float = 0.35
    #: EWMA weight of a consistent report (pull toward 1).  Asymmetric
    #: on purpose: lying half the time must not average out.
    alpha_recover: float = 0.10
    #: Reports ignored per peer before scoring starts (join transient).
    warmup_reports: int = 2
    #: Reported power may drift from the join claim by this factor
    #: before the mismatch counts as a lie.
    power_tolerance: float = 1.3
    #: Under-reporting: flagged when reported load is below this
    #: fraction of the expected-busy level implied by projections.
    #: Deliberately low — the shipped liars report *zero* load, while an
    #: honest report legitimately lags the RM's projections.
    under_report_frac: float = 0.2
    #: ...but only judged when live projections exceed this fraction of
    #: the claimed power (tiny assignments prove nothing).
    min_projection_frac: float = 0.25
    #: Consecutive divergences a timing-sensitive signal needs before it
    #: penalizes (under-reporting, slow completions) — a report caught
    #: stale mid-admission-burst must not tank an honest peer.
    timing_streak: int = 3
    #: Timing signals only apply when the report claims utilization
    #: below this (a peer that admits being busy isn't hiding load).
    idle_claim_util: float = 0.5
    #: Slow completion: flagged when observed work/elapsed rate is
    #: below this fraction of the report-implied free power.
    slow_rate_factor: float = 0.3
    #: Steps shorter than this are timing noise; skip them.
    min_step_time: float = 0.05
    #: Score below which the peer is a suspect (load discounted).
    suspect_threshold: float = 0.7
    #: Score below which the peer is quarantined out of placement.
    quarantine_threshold: float = 0.4
    #: Score a probationer must regain to be trusted again.
    recover_threshold: float = 0.85
    #: First quarantine length (seconds); relapses escalate.
    quarantine_period: float = 30.0
    quarantine_escalation: float = 2.0
    max_quarantine_period: float = 240.0
    #: Fraction of claimed power a probationer may be offered.
    probation_capacity: float = 0.35
    #: Quarantine penalty as a multiple of claimed power — must exceed
    #: any utilization cap so every placement on the peer is infeasible.
    quarantine_penalty: float = 2.0


@dataclass
class TrustState:
    """Per-peer trust bookkeeping."""

    peer_id: str
    #: Power the peer claimed when it joined (the yardstick reports are
    #: checked against).
    claimed_power: float
    score: float = 1.0
    state: str = TRUSTED
    reports_seen: int = 0
    steps_seen: int = 0
    #: Consecutive divergent reports / steps (timing signals need 2).
    report_streak: int = 0
    step_streak: int = 0
    quarantines: int = 0
    quarantined_until: float = 0.0
    #: Divergence counts by signal name.
    signals: Dict[str, int] = field(default_factory=dict)


class ReputationEngine:
    """Trust scores + quarantine state machine for one RM's domain.

    Standalone on purpose: observations carry everything they need
    (the peer's roster record, the RM's projected load), so the engine
    never reaches back into the info base and the
    ``effective_load -> load_penalty`` hook cannot recurse.
    """

    def __init__(self, config: Optional[ReputationConfig] = None) -> None:
        self.config = config or ReputationConfig()
        self._states: Dict[str, TrustState] = {}
        self.quarantines_total = 0

    # -- roster ------------------------------------------------------------
    def note_join(self, record: "PeerRecord") -> None:
        """Snapshot the join claim as the consistency yardstick."""
        self._states[record.peer_id] = TrustState(
            peer_id=record.peer_id, claimed_power=float(record.power),
        )

    def forget(self, peer_id: str) -> None:
        """Drop a departed peer's trust state."""
        self._states.pop(peer_id, None)

    def state_of(self, peer_id: str) -> Optional[TrustState]:
        return self._states.get(peer_id)

    # -- observations ------------------------------------------------------
    def observe_report(
        self,
        report: "LoadReport",
        rec: "PeerRecord",
        projected: float,
        now: float,
    ) -> None:
        """Score one LOAD_UPDATE against the join claim + projections.

        ``projected`` is the RM's own live allocation projection for
        the peer (:meth:`DomainInfoBase.projected_load`) — evidence of
        assigned work that the report cannot argue away.
        """
        cfg = self.config
        st = self._states.get(report.peer_id)
        if st is None:
            st = self._states[report.peer_id] = TrustState(
                peer_id=report.peer_id, claimed_power=float(rec.power),
            )
        st.reports_seen += 1
        self._expire_quarantine(st, now)
        if st.reports_seen <= cfg.warmup_reports:
            return

        claimed = st.claimed_power
        reported_power = float(report.power)
        divergent: Optional[str] = None
        if claimed > 0 and reported_power > 0 and (
            reported_power > claimed * cfg.power_tolerance
            or reported_power * cfg.power_tolerance < claimed
        ):
            divergent = "power_mismatch"
        elif projected > cfg.min_projection_frac * max(claimed, 1e-9):
            # The RM assigned this peer real work; idle claims are lies.
            expected_busy = min(projected, claimed)
            if report.load < cfg.under_report_frac * expected_busy:
                divergent = "under_report"

        if divergent is None:
            st.report_streak = 0
            self._apply(st, consistent=True, now=now)
        elif divergent == "power_mismatch":
            # Paperwork self-contradiction: unambiguous, no streak gate.
            st.report_streak += 1
            self._penalize(st, divergent, now)
        else:
            st.report_streak += 1
            if st.report_streak >= cfg.timing_streak:
                # Half weight: timing evidence is circumstantial, and an
                # isolated ding must leave a trusted peer trusted.
                self._penalize(st, divergent, now, weight=0.5)

    def observe_step(
        self,
        peer_id: str,
        rec: "PeerRecord",
        work: float,
        elapsed: float,
        now: float,
    ) -> None:
        """Score a STEP_DONE completion against the claimed free power."""
        cfg = self.config
        st = self._states.get(peer_id)
        if st is None or st.reports_seen <= cfg.warmup_reports:
            return
        if work <= 0.0 or elapsed < cfg.min_step_time:
            return
        report = rec.last_report
        if report is None or report.utilization >= cfg.idle_claim_util:
            return  # the peer admits being busy; nothing to catch
        st.steps_seen += 1
        free = max(rec.power - report.load, rec.power * 0.05)
        observed = work / elapsed
        if observed < cfg.slow_rate_factor * free:
            st.step_streak += 1
            if st.step_streak >= cfg.timing_streak:
                self._penalize(st, "slow_completion", now, weight=0.5)
        else:
            st.step_streak = 0

    # -- scoring -----------------------------------------------------------
    def _apply(
        self,
        st: TrustState,
        consistent: bool,
        now: float,
        weight: float = 1.0,
    ) -> None:
        cfg = self.config
        if consistent:
            st.score += cfg.alpha_recover * (1.0 - st.score)
        else:
            st.score -= weight * cfg.alpha_penalty * st.score
        self._transition(st, now)

    def _penalize(
        self, st: TrustState, signal: str, now: float, weight: float = 1.0
    ) -> None:
        st.signals[signal] = st.signals.get(signal, 0) + 1
        tel = telemetry.current()
        if tel.enabled:
            tel.metrics.counter(
                "repro_reputation_divergences_total", signal=signal
            ).inc()
            tel.metrics.gauge(
                "repro_reputation_trust", peer=st.peer_id
            ).set(st.score)
        self._apply(st, consistent=False, now=now, weight=weight)

    def _transition(self, st: TrustState, now: float) -> None:
        cfg = self.config
        if st.state == QUARANTINED:
            self._expire_quarantine(st, now)
            return
        if st.score < cfg.quarantine_threshold:
            self._quarantine(st, now)
        elif st.state == PROBATION:
            if st.score >= cfg.recover_threshold:
                st.state = TRUSTED
        elif st.score < cfg.suspect_threshold:
            st.state = SUSPECT
        elif st.state == SUSPECT and st.score >= cfg.recover_threshold:
            st.state = TRUSTED

    def _quarantine(self, st: TrustState, now: float) -> None:
        cfg = self.config
        period = min(
            cfg.quarantine_period * (
                cfg.quarantine_escalation ** st.quarantines
            ),
            cfg.max_quarantine_period,
        )
        st.state = QUARANTINED
        st.quarantines += 1
        st.quarantined_until = now + period
        self.quarantines_total += 1
        tel = telemetry.current()
        if tel.enabled:
            tel.metrics.counter(
                "repro_reputation_quarantines_total", peer=st.peer_id
            ).inc()
            tel.tracer.event(
                "reputation.quarantine", peer=st.peer_id,
                until=st.quarantined_until, n=st.quarantines,
            )

    def _expire_quarantine(self, st: TrustState, now: float) -> None:
        if st.state == QUARANTINED and now >= st.quarantined_until:
            # Re-entry: reduced capacity, score floored at the threshold
            # so consistent behavior can climb back to trusted.
            st.state = PROBATION
            st.score = max(st.score, self.config.quarantine_threshold)

    # -- enforcement -------------------------------------------------------
    def load_penalty(
        self, peer_id: str, rec: "PeerRecord", now: float
    ) -> float:
        """Phantom load added to the peer's effective load.

        The single enforcement point: called from
        :meth:`DomainInfoBase.effective_load`, so the estimator, the
        capacity prune, fairness ranking and source selection all see
        distrusted peers as busier than they claim.
        """
        st = self._states.get(peer_id)
        if st is None:
            return 0.0
        cfg = self.config
        if st.state == QUARANTINED:
            if now < st.quarantined_until:
                return rec.power * cfg.quarantine_penalty
            self._expire_quarantine(st, now)
        if st.state == PROBATION:
            return rec.power * (1.0 - cfg.probation_capacity)
        if st.state == TRUSTED:
            # No discount while trusted: an honest peer that ate an
            # isolated ding must not perturb placement at all.
            return 0.0
        return rec.power * (1.0 - st.score)

    def is_quarantined(self, peer_id: str, now: float) -> bool:
        st = self._states.get(peer_id)
        if st is None or st.state != QUARANTINED:
            return False
        self._expire_quarantine(st, now)
        return st.state == QUARANTINED

    # -- reporting ---------------------------------------------------------
    def quarantined_ids(self, now: float) -> List[str]:
        return sorted(
            pid for pid in self._states
            if self.is_quarantined(pid, now)
        )

    def snapshot(self, now: float) -> Dict[str, object]:
        """Point-in-time view for metrics documents and probes."""
        peers = {}
        signals: Dict[str, int] = {}
        for pid, st in sorted(self._states.items()):
            self._expire_quarantine(st, now)
            peers[pid] = {
                "score": round(st.score, 6),
                "state": st.state,
                "quarantines": st.quarantines,
            }
            for sig, n in st.signals.items():
                signals[sig] = signals.get(sig, 0) + n
        return {
            "peers": peers,
            "quarantined": [
                pid for pid, p in peers.items()
                if p["state"] == QUARANTINED
            ],
            "ever_quarantined": [
                pid for pid, p in peers.items() if p["quarantines"] > 0
            ],
            "quarantines_total": self.quarantines_total,
            "signals": signals,
        }

    def __repr__(self) -> str:
        return (
            f"<ReputationEngine peers={len(self._states)} "
            f"quarantines={self.quarantines_total}>"
        )

"""Failure repair and adaptive reassignment (§4.1, §4.5).

Senses withdrawn connections (a peer silent for several update periods
is declared dead), prunes the resource graph, re-runs the allocation
for interrupted tasks from the state their data had reached, and —
under domain overload — voluntarily migrates a running task's remaining
steps away from the hottest peer when that buys enough fairness.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.common.errors import NoFeasibleAllocation
from repro.core import protocol
from repro.core.allocation import AllocationResult
from repro.core.session import ComposeOrder, SessionState
from repro.graphs.service_graph import ServiceGraph
from repro.tasks.task import ApplicationTask, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control.placement import PlacementEngine
    from repro.core.manager import ResourceManager


class RepairCoordinator:
    """Owns peer-failure repair and overload reassignment for one RM."""

    def __init__(
        self, rm: "ResourceManager", engine: "PlacementEngine"
    ) -> None:
        self.rm = rm
        self.engine = engine

    # -- liveness -----------------------------------------------------------
    def check_liveness(self, now: float) -> None:
        """Sense withdrawn connections (silent peers, §4.1)."""
        rm = self.rm
        cfg = rm.rm_config
        for peer_id in list(rm.info.peers):
            if peer_id == rm.node_id:
                continue
            silent = now - rm.last_seen.get(peer_id, now)
            limit = cfg.dead_after_periods * max(
                rm._peer_update_period(peer_id), cfg.monitor_period
            )
            if silent > limit:
                self.peer_down(peer_id, graceful=False)

    def peer_down(self, peer_id: str, graceful: bool) -> None:
        """Handle a departed/failed member (§4.1)."""
        rm = self.rm
        if not rm.info.has_peer(peer_id):
            return
        removed_edges = rm.info.remove_peer(peer_id)
        rm.last_seen.pop(peer_id, None)
        # Objects hosted only there become unavailable.
        for name in list(rm.object_catalog):
            if not rm.info.peers_with_object(name):
                del rm.object_catalog[name]
        if rm.tracer is not None:
            rm.tracer.record(
                rm.env.now, "rm.peer_down", rm=rm.node_id, peer=peer_id,
                graceful=graceful, edges=len(removed_edges),
            )
        # Repair interrupted tasks (the roster no longer lists the dead
        # peer, so scan the session graphs directly).
        affected = [
            s.graph for s in rm.sessions.values()
            if s.graph.uses_peer(peer_id)
        ]
        for graph in affected:
            task = rm.tasks.get(graph.task_id)
            if task is None:
                continue
            if not rm.rm_config.enable_repair:
                rm.registry.fail(task, f"peer {peer_id} failed")
                continue
            self.repair_task(task, dead_peer=peer_id)

    # -- repair -------------------------------------------------------------
    def repair_task(self, task: ApplicationTask, dead_peer: str) -> None:
        """Re-run the allocation from the task's current data state (§4.1)."""
        rm = self.rm
        session = rm.sessions.get(task.task_id)
        if session is None:
            return
        if dead_peer == task.origin_peer:
            rm.registry.fail(task, "origin peer failed")
            return
        # Where is the data now, and in which state?
        resume = session.resume_point()
        holder = session.resume_source()
        graph = session.graph
        if holder is None or holder == dead_peer or not rm.info.has_peer(holder):
            # The data died with the holder: restart from the source.
            holder = graph.source_peer
            resume = 0
            if holder == dead_peer or not rm.info.has_peer(holder):
                # Source gone too: another replica?
                candidates = rm.info.peers_with_object(task.name)
                if not candidates:
                    rm.registry.fail(task, "source object lost")
                    return
                holder = candidates[0]
        if resume == 0:
            v_now = task.initial_state
            in_bytes = rm.object_catalog[task.name].size_bytes \
                if task.name in rm.object_catalog else 0.0
        else:
            v_now = graph.steps[resume - 1].dst_state
            in_bytes = graph.steps[resume - 1].out_bytes
        # Remaining conversion work still needed?
        if v_now == task.goal_state:
            remaining_path: List[Any] = []
            result = None
        else:
            try:
                result = self.engine.place(
                    task,
                    v_init=v_now,
                    v_sol=task.goal_state,
                    source_peer=holder,
                    sink_peer=task.origin_peer,
                    in_bytes=in_bytes,
                    work_scale=task.meta.get("work_scale", 1.0),
                    phase="repair",
                )
                remaining_path = result.path
            except NoFeasibleAllocation:
                rm.registry.fail(task, "repair found no allocation")
                return
        session.repairs += 1
        task.repairs += 1
        rm.stats["repairs"] += 1
        self._recompose(
            task, session, remaining_path, result, holder, resume,
            skip_peer=dead_peer,
        )
        rm._emit(task, "repaired")

    # -- reassignment -------------------------------------------------------
    def maybe_reassign(self) -> None:
        """§4.5: under overload/unfairness, migrate a running task."""
        rm = self.rm
        now = rm.env.now
        utils = rm.info.utilization_vector(now)
        if not utils:
            return
        mean_util = sum(utils.values()) / len(utils)
        # §4.5: reassignment is an *overload* response — a merely uneven
        # but lightly loaded domain is left alone (migrating a healthy
        # task costs a restart of its remaining steps).
        if mean_util < rm.rm_config.overload_utilization:
            return
        # Candidate: the running task with the most remaining steps on the
        # most-loaded peer, lowest importance first.
        hottest = max(utils, key=lambda p: utils[p])
        candidates: List[tuple[float, ApplicationTask, SessionState]] = []
        for session in rm.sessions.values():
            task = rm.tasks.get(session.task_id)
            if task is None or task.state is not TaskState.RUNNING:
                continue
            resume = session.resume_point()
            future = session.graph.steps[resume:]
            if any(s.peer_id == hottest for s in future):
                candidates.append((task.qos.importance, task, session))
        if not candidates:
            return
        candidates.sort(key=lambda t: t[0])
        _, task, session = candidates[0]
        self.migrate_task(task, session, avoid_peer=hottest)

    def migrate_task(
        self, task: ApplicationTask, session: SessionState, avoid_peer: str
    ) -> None:
        """Re-allocate a running task's remaining steps away from a hot peer."""
        rm = self.rm
        resume = session.resume_point()
        graph = session.graph
        holder = session.resume_source() or graph.source_peer
        if not rm.info.has_peer(holder):
            return
        if resume == 0:
            v_now = task.initial_state
            in_bytes = session.order.in_bytes
        else:
            v_now = graph.steps[resume - 1].dst_state
            in_bytes = graph.steps[resume - 1].out_bytes
        if v_now == task.goal_state:
            return
        # The allocator routes from the load view as-is; the migration
        # is only taken when it avoids the hot peer AND buys fairness.
        old_fairness = rm.info.load_vector(rm.env.now).fairness()
        try:
            result = self.engine.place(
                task,
                v_init=v_now,
                v_sol=task.goal_state,
                source_peer=holder,
                sink_peer=task.origin_peer,
                in_bytes=in_bytes,
                work_scale=task.meta.get("work_scale", 1.0),
                phase="reassign",
            )
        except NoFeasibleAllocation:
            return
        uses_hot = any(e.peer_id == avoid_peer for e in result.path)
        current_future = graph.steps[resume:]
        same = [
            (s.service_id, s.peer_id) for s in current_future
        ] == [(e.service_id, e.peer_id) for e in result.path]
        if (
            same
            or uses_hot
            or result.fairness
            < old_fairness + rm.rm_config.reassign_min_gain
        ):
            return
        # Cancel the not-yet-run suffix at its old peers.
        for step in current_future:
            rm._send_or_local(
                step.peer_id, protocol.CANCEL_TASK,
                {"task_id": task.task_id},
                size=protocol.size_of(protocol.CANCEL_TASK),
            )
        rm.stats["reassignments"] += 1
        self._recompose(task, session, result.path, result, holder, resume)
        rm._emit(task, "reassigned")

    # -- shared re-composition ----------------------------------------------
    def _recompose(
        self,
        task: ApplicationTask,
        session: SessionState,
        new_path: List[Any],
        result: Optional[AllocationResult],
        holder: str,
        resume: int,
        skip_peer: Optional[str] = None,
    ) -> None:
        """Splice a fresh suffix into the service graph and re-announce.

        Rebuilds the chain as done-prefix + new suffix, bumps the
        session epoch, refreshes the projected load, and sends the new
        compose order to everyone still involved (the holder resumes
        the stream from *resume*).
        """
        rm = self.rm
        graph = session.graph
        scale = task.meta.get("work_scale", 1.0)
        suffix = ServiceGraph.from_edges(
            task.task_id, new_path, holder, task.origin_peer,
            work_scale=scale, index_offset=resume,
        )
        graph.steps = list(graph.steps[:resume]) + list(suffix.steps)
        session.epoch += 1
        rm.info.release_projection(task.task_id)
        if result is not None:
            rm.info.project_allocation(
                task.task_id, result.deltas, expires_at=task.absolute_deadline
            )
        task.allocation = graph.allocation_pairs()
        order = ComposeOrder(
            task_id=task.task_id,
            rm_id=rm.node_id,
            source_peer=graph.source_peer,
            sink_peer=task.origin_peer,
            steps=list(graph.steps),
            abs_deadline=task.absolute_deadline,
            importance=task.qos.importance,
            in_bytes=session.order.in_bytes,
            resume_from=resume,
            epoch=session.epoch,
        )
        session.order = order
        # Deterministic fan-out order (graph first-seen order, holder
        # appended): iterating a set of str here made the message
        # sequence — and thus the whole trajectory — depend on
        # PYTHONHASHSEED, breaking run reproducibility under churn.
        recipients = dict.fromkeys(graph.peers())
        recipients.setdefault(holder, None)
        for peer_id in recipients:
            if skip_peer is not None and peer_id == skip_peer:
                continue
            rm._send_or_local(
                peer_id, protocol.COMPOSE, {"order": order},
                size=protocol.size_of(protocol.COMPOSE),
            )
        rm._send_or_local(
            holder, protocol.START_STREAM,
            {"task_id": task.task_id, "from_step": resume},
            size=protocol.size_of(protocol.START_STREAM),
        )

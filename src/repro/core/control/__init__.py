"""The Resource Manager's control plane (§3.4, §4.2).

The RM shell (:class:`~repro.core.manager.ResourceManager`) routes
protocol messages to four composable components:

* :class:`AdmissionController` — capacity/QoS admission, session
  launch, summary-guided redirection (§4.3, §4.5),
* :class:`PlacementEngine` + :class:`PlacementPolicy` — the Fig-3
  search with a pluggable candidate-choice rule (paper fairness, or the
  baseline heuristics by name),
* :class:`TaskRegistry` — task lifecycle state, sessions, and the
  failover snapshots replicated to the backup RM (§4.1),
* :class:`RepairCoordinator` — liveness sensing, service-graph repair,
  and overload reassignment (§4.1, §4.5).

See ``docs/architecture.md`` for the layering and how to register a
custom placement policy.
"""

from repro.core.control.admission import AdmissionController
from repro.core.control.placement import (
    CallablePolicy,
    PaperPolicy,
    PlacementEngine,
    PlacementPolicy,
    make_placement_policy,
    policy_names,
    register_policy,
)
from repro.core.control.registry import TaskRegistry
from repro.core.control.repair import RepairCoordinator

__all__ = [
    "AdmissionController",
    "CallablePolicy",
    "PaperPolicy",
    "PlacementEngine",
    "PlacementPolicy",
    "RepairCoordinator",
    "TaskRegistry",
    "make_placement_policy",
    "policy_names",
    "register_policy",
]

"""Task lifecycle event emission shared by the control-plane components.

Every component reports transitions through
:func:`emit_task_event` (via ``rm._emit``): it feeds the legacy sim
tracer, the unified telemetry layer (span per task, counters), and the
RM's ``on_task_event`` metrics hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import telemetry
from repro.tasks.task import ApplicationTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import ResourceManager

#: Events that end a task's lifecycle (close its telemetry span).
TERMINAL_EVENTS = frozenset({"completed", "rejected", "failed"})


def emit_task_event(
    rm: "ResourceManager", task: ApplicationTask, event: str
) -> None:
    """Record a task lifecycle transition on every observer channel."""
    if rm.tracer is not None:
        rm.tracer.record(
            rm.env.now, f"task.{event}", task=task.task_id, rm=rm.node_id,
        )
    tel = telemetry.current()
    if tel.enabled:
        trace_id = f"task:{task.task_id}"
        if event == "submitted":
            tel.tracer.start_span(
                task.task_id, kind=telemetry.TASK, node=rm.node_id,
                trace_id=trace_id, key=trace_id,
                origin=task.origin_peer, deadline=task.qos.deadline,
                importance=task.qos.importance,
            )
            tel.metrics.counter("repro_rm_tasks_submitted_total").inc()
        elif event in TERMINAL_EVENTS:
            outcome = task.outcome.value if task.outcome else None
            tel.tracer.end_span_key(trace_id, status=event, outcome=outcome)
            tel.metrics.counter(
                "repro_rm_tasks_finished_total", event=event
            ).inc()
        else:
            span = tel.tracer.open_span(trace_id)
            tel.tracer.event(
                f"task.{event}", node=rm.node_id, trace_id=trace_id,
                span_id=span.span_id if span else None,
            )
    if rm.on_task_event is not None:
        rm.on_task_event(task, event)

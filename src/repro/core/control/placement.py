"""Placement policy interface and the RM's placement engine.

The Figure-3 allocation machinery (:class:`~repro.core.allocation.
Allocator`) searches the resource graph and prunes infeasible paths;
*which* feasible candidate wins is a policy choice.  The paper maximizes
post-assignment Jain fairness; the related-work baselines pick randomly,
greedily, or round-robin.  A :class:`PlacementPolicy` captures exactly
that choice, so alternatives are drop-in comparable while the search,
feasibility, and QoS machinery stay shared.

Policies are registered by name (``register_policy``) and built with
:func:`make_placement_policy`; ``repro-run --policy`` / ``repro-live
--policy`` and :class:`~repro.core.manager.RMConfig.placement_policy`
resolve through the same registry.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro import telemetry
from repro.baselines.selectors import (
    LeastLoadedSelector,
    RandomSelector,
    RoundRobinSelector,
    select_first,
)
from repro.core.allocation import (
    AllocationResult,
    Allocator,
    Candidate,
    Selector,
    select_max_fairness,
)
from repro.tasks.task import ApplicationTask

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.core.manager import ResourceManager


class PlacementPolicy(ABC):
    """Chooses the winning candidate among feasible allocations.

    Subclass and :func:`register_policy` to experiment with custom
    placement heuristics; every candidate carries its path, projected
    fairness, estimated completion time, per-peer load deltas, and the
    max post-assignment utilization (see
    :class:`~repro.core.allocation.Candidate`).
    """

    #: Registry name (set per subclass/instance).
    name: str = "custom"

    @abstractmethod
    def select(self, candidates: List[Candidate]) -> Candidate:
        """Pick one of the (non-empty) feasible candidates."""


class CallablePolicy(PlacementPolicy):
    """Adapt a bare :data:`~repro.core.allocation.Selector` callable."""

    def __init__(self, fn: Selector, name: Optional[str] = None) -> None:
        self._fn = fn
        self.name = name if name is not None else _derive_name(fn)

    def select(self, candidates: List[Candidate]) -> Candidate:
        return self._fn(candidates)


class PaperPolicy(PlacementPolicy):
    """The paper's rule: maximize post-assignment fairness (Fig. 3)."""

    name = "paper"

    def select(self, candidates: List[Candidate]) -> Candidate:
        return select_max_fairness(candidates)


def _derive_name(fn: Selector) -> str:
    """A readable policy name for a bare selector callable."""
    if fn is select_max_fairness:
        return "paper"
    if fn is select_first:
        return "first"
    for cls, name in (
        (RandomSelector, "random"),
        (LeastLoadedSelector, "least_loaded"),
        (RoundRobinSelector, "round_robin"),
    ):
        if isinstance(fn, cls):
            return name
    return getattr(fn, "__name__", type(fn).__name__).lower()


#: name -> factory(rng) -> PlacementPolicy
_POLICY_FACTORIES: Dict[
    str, Callable[[Optional["np.random.Generator"]], PlacementPolicy]
] = {}


def register_policy(
    name: str,
    factory: Callable[[Optional["np.random.Generator"]], PlacementPolicy],
) -> None:
    """Register a custom placement policy under *name*."""
    _POLICY_FACTORIES[name] = factory


def policy_names() -> List[str]:
    """All registered policy names, sorted."""
    return sorted(_POLICY_FACTORIES)


def make_placement_policy(
    name: str, rng: Optional["np.random.Generator"] = None
) -> PlacementPolicy:
    """Build a registered policy by name."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; known: {policy_names()}"
        ) from None
    return factory(rng)


def _register_builtins() -> None:
    register_policy("paper", lambda rng: PaperPolicy())
    # "fairness" is the historical scenario-config name for the same rule.
    register_policy(
        "fairness", lambda rng: CallablePolicy(select_max_fairness, "paper")
    )
    register_policy(
        "first", lambda rng: CallablePolicy(select_first, "first")
    )
    register_policy(
        "random", lambda rng: CallablePolicy(RandomSelector(rng), "random")
    )
    register_policy(
        "least_loaded",
        lambda rng: CallablePolicy(LeastLoadedSelector(), "least_loaded"),
    )
    register_policy(
        "round_robin",
        lambda rng: CallablePolicy(RoundRobinSelector(), "round_robin"),
    )


_register_builtins()


class PlacementEngine:
    """Runs the allocation search under one placement policy.

    Resolution order for the effective policy:

    1. an explicit ``policy`` (instance or registry name),
    2. the selector already configured on an explicitly supplied
       ``allocator`` (so callers who pre-built an allocator — the
       simulator's per-RM factories, tests — keep byte-identical
       behavior),
    3. ``default_policy`` (the RM's ``RMConfig.placement_policy``).
    """

    def __init__(
        self,
        rm: "ResourceManager",
        allocator: Optional[Allocator] = None,
        policy: Optional[PlacementPolicy | str] = None,
        default_policy: str = "paper",
        rng: Optional["np.random.Generator"] = None,
    ) -> None:
        self.rm = rm
        base = allocator if allocator is not None else Allocator()
        if policy is None:
            if allocator is not None:
                policy = CallablePolicy(base.selector)
            else:
                policy = make_placement_policy(default_policy, rng)
        elif isinstance(policy, str):
            policy = make_placement_policy(policy, rng)
        self.policy: PlacementPolicy = policy
        #: The shared search machinery, wired to the policy's choice rule.
        self.allocator: Allocator = dataclasses.replace(
            base, selector=policy.select
        )

    def place(
        self,
        task: ApplicationTask,
        *,
        v_init,
        v_sol,
        source_peer: str,
        sink_peer: str,
        in_bytes: float,
        work_scale: float = 1.0,
        allocator: Optional[Allocator] = None,
        phase: str = "admit",
    ) -> AllocationResult:
        """Allocate *task* and record the placement decision.

        ``allocator`` overrides the engine's (admission passes the
        importance-strict variant).  Raises
        :class:`~repro.common.errors.NoFeasibleAllocation` as the
        underlying allocator does.
        """
        rm = self.rm
        result = (allocator or self.allocator).allocate(
            rm.info,
            rm.network,
            task,
            v_init=v_init,
            v_sol=v_sol,
            source_peer=source_peer,
            sink_peer=sink_peer,
            in_bytes=in_bytes,
            now=rm.env.now,
            work_scale=work_scale,
        )
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.event(
                "placement.decide",
                node=rm.node_id,
                trace_id=f"task:{task.task_id}",
                policy=self.policy.name,
                phase=phase,
                fairness=result.fairness,
                est_time=result.est_time,
                n_candidates=result.n_candidates,
            )
            tel.metrics.counter(
                "repro_rm_placement_decisions_total",
                policy=self.policy.name,
                phase=phase,
            ).inc()
        return result

    def strict_variant(self, utilization_cap_factor: float) -> Allocator:
        """The engine's allocator with a reduced capacity cap.

        Used by importance-aware admission: the top slice of every
        peer stays reserved for important work.
        """
        base = self.allocator
        strict_est = dataclasses.replace(
            base.estimator,
            max_utilization=base.estimator.max_utilization
            * utilization_cap_factor,
        )
        return dataclasses.replace(base, estimator=strict_est)

    def __repr__(self) -> str:
        return f"<PlacementEngine policy={self.policy.name}>"

"""The domain Resource Manager shell (paper §2, §4).

An RM is itself a peer ("Resource Managers are selected among regular
peers").  It is a thin message-routing shell: protocol handlers and
periodic loops live here, while the duties are delegated to four
composable components under :mod:`repro.core.control` —
:class:`AdmissionController`, :class:`PlacementEngine` (with a named,
pluggable :class:`PlacementPolicy`), :class:`TaskRegistry`, and
:class:`RepairCoordinator`.  See ``docs/architecture.md``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Union

from repro.core import protocol
from repro.core.allocation import Allocator
from repro.core.control.admission import AdmissionController
from repro.core.control.events import emit_task_event
from repro.core.control.placement import PlacementEngine, PlacementPolicy
from repro.core.control.registry import TaskRegistry
from repro.core.control.repair import RepairCoordinator
from repro.core.control.reputation import ReputationEngine
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.core.peer import Peer, PeerConfig
from repro.core.session import SessionState
from repro.media.objects import MediaObject
from repro.monitoring.profiler import LoadReport
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.sim.trace import Tracer
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskState

#: Task lifecycle callback: (task, event), e.g. "submitted"/"completed".
TaskEventFn = Callable[[ApplicationTask, str], None]


@dataclass
class RMConfig:
    """Resource Manager tunables."""

    #: Maximum peers one RM manages (domain size bound, §4.1).
    max_peers: int = 64
    #: Declare a peer dead after this many missed update periods.
    dead_after_periods: float = 3.5
    #: Peer-liveness scan period (seconds).
    monitor_period: float = 1.0
    #: Grace beyond the deadline before a silent task is declared lost.
    task_loss_grace: float = 10.0
    #: Maximum inter-domain redirects per task.
    max_redirects: int = 3
    #: Placement policy name — ``paper`` (fairness maximization), or any
    #: name registered in :mod:`repro.core.control.placement`.  Applies
    #: when the RM is built without an explicit allocator/policy.
    placement_policy: str = "paper"
    #: Distrust a gossiped domain summary older than this many seconds
    #: when picking a redirect target (demote to fallback).  ``None``
    #: (default) trusts any cached summary, the paper behavior.
    redirect_summary_max_age: Optional[float] = None
    #: Enable adaptive reassignment of running tasks under overload.
    enable_reassignment: bool = True
    #: Reassignment check period (seconds).
    reassign_period: float = 5.0
    #: Domain counts as overloaded when mean utilization exceeds this.
    overload_utilization: float = 0.85
    #: Minimum fairness gain for a voluntary task migration.
    reassign_min_gain: float = 0.05
    #: Enable service-graph repair after peer failures.
    enable_repair: bool = True
    #: Importance-aware admission (§3.3): beyond
    #: ``importance_admission_util`` load, below-average-importance tasks
    #: face a stricter cap (``low_importance_cap`` x max utilization).
    #: Off by default (the paper admits on feasibility alone).
    importance_admission: bool = False
    importance_admission_util: float = 0.75
    low_importance_cap: float = 0.7
    #: State-replication period to the backup RM (§4.1).
    sync_period: float = 5.0
    #: Stream duration the resource-graph edge costs are calibrated for;
    #: tasks on objects of other durations scale work proportionally.
    canonical_duration: float = 60.0
    #: The profiler update period members are configured with — the
    #: yardstick for declaring a silent peer dead.
    expected_update_period: float = 2.0
    #: §4.1: "If the Resource Manager has available bandwidth and
    #: processing power, it accepts the processor in its domain" — an
    #: RM busier than this redirects joins even with roster room.
    join_accept_max_util: float = 0.95
    #: Reputation-gated load reports (``--defense``): cross-check each
    #: peer's claims against observed evidence, discount divergent
    #: peers in placement and quarantine chronic liars.  Off by default
    #: — the paper trusts self-reports, and the trajectory goldens
    #: stay byte-identical.
    enable_defense: bool = False


class ResourceManager(Peer):
    """A domain leader: admission, allocation, adaptation.

    When ``allocator`` is supplied its configured selector *is* the
    placement policy (unless ``policy`` — an instance or registry name —
    is also given), so pre-built allocators keep byte-identical
    behavior; otherwise ``rm_config.placement_policy`` decides.
    ``active=False`` builds a passive backup: handlers installed and
    state received via RM_SYNC, but no admission or monitoring until
    :meth:`activate` (failover).
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        peer_id: str,
        domain_id: str,
        allocator: Optional[Allocator] = None,
        rm_config: Optional[RMConfig] = None,
        peer_config: Optional[PeerConfig] = None,
        active: bool = True,
        on_task_event: Optional[TaskEventFn] = None,
        tracer: Optional[Tracer] = None,
        policy: Optional[Union[PlacementPolicy, str]] = None,
    ) -> None:
        super().__init__(
            env, network, peer_id, config=peer_config, rm_id=peer_id,
            tracer=tracer,
        )
        self.domain_id = domain_id
        self.rm_config = rm_config or RMConfig()
        self.on_task_event = on_task_event
        self.info = DomainInfoBase(domain_id, peer_id)
        #: Media objects known in the domain, by name.
        self.object_catalog: Dict[str, MediaObject] = {}
        #: Last time each member peer was heard from (update/heartbeat).
        self.last_seen: Dict[str, float] = {}
        #: Other known RMs: rm peer id -> domain id.
        self.known_rms: Dict[str, str] = {}
        self.backup_id: Optional[str] = None
        self.active = active
        self.stats: Dict[str, int] = {k: 0 for k in (
            "admitted", "rejected", "redirected_out", "redirected_in",
            "completed", "missed", "failed", "repairs", "reassignments",
        )}

        # The control plane: placement, admission, registry, repair.
        self.placement = PlacementEngine(
            self, allocator=allocator, policy=policy,
            default_policy=self.rm_config.placement_policy,
        )
        self.registry = TaskRegistry(self)
        self.admission = AdmissionController(self, self.placement)
        self.repair = RepairCoordinator(self, self.placement)
        #: Reputation-gated load reports (RMConfig.enable_defense).
        #: Attached to the info base so effective_load folds the trust
        #: penalty into every placement-facing load read.
        self.reputation: Optional[ReputationEngine] = None
        if self.rm_config.enable_defense:
            self.reputation = ReputationEngine()
            self.info.reputation = self.reputation

        self.on(protocol.LOAD_UPDATE, self._handle_load_update)
        self.on(protocol.TASK_REQUEST, self._handle_task_request)
        self.on(protocol.TASK_REDIRECT, self._handle_task_redirect)
        self.on(protocol.STEP_DONE, self._handle_step_done)
        self.on(protocol.TASK_DONE, self._handle_task_done)
        self.on(protocol.PEER_LEAVE, self._handle_peer_leave)
        self.on(protocol.QOS_UPDATE, self._handle_qos_update)

        self._monitor_proc = None
        self._reassign_proc = None
        if active:
            self._start_loops()

    # ------------------------------------ state views (control-plane owned)
    @property
    def tasks(self) -> Dict[str, ApplicationTask]:
        return self.registry.tasks

    @property
    def sessions(self) -> Dict[str, SessionState]:
        return self.registry.sessions

    @property
    def allocator(self) -> Allocator:
        return self.placement.allocator

    @property
    def policy_name(self) -> str:
        return self.placement.policy.name

    # ------------------------------------------------------------------ setup
    def _start_loops(self) -> None:
        self._monitor_proc = self.env.process(
            self._monitor_loop(), name=f"rm-monitor:{self.node_id}"
        )
        if self.rm_config.enable_reassignment:
            self._reassign_proc = self.env.process(
                self._reassign_loop(), name=f"rm-reassign:{self.node_id}"
            )

    def fail(self) -> None:
        """Crash: a dead RM stops monitoring/reassigning entirely."""
        for proc in (self._monitor_proc, self._reassign_proc):
            if proc is not None and proc.is_alive:
                proc.interrupt("fail")
        self.active = False
        super().fail()

    def _send_load_update(self, report: LoadReport) -> None:
        # An active RM is its own manager: fold the report in directly.
        # A passive backup reports to the primary like any member.
        if self.rm_id == self.node_id:
            if self.active and self.info.has_peer(self.node_id):
                self.info.update_from_report(report)
                self.last_seen[self.node_id] = self.env.now
        else:
            super()._send_load_update(report)

    # -------------------------------------------------------------- membership
    def admit_peer(
        self,
        record: PeerRecord,
        objects: Optional[Dict[str, MediaObject]] = None,
    ) -> None:
        """Add a member to the domain roster (join accepted, §4.1)."""
        self.info.add_peer(record)
        if self.reputation is not None and record.peer_id != self.node_id:
            self.reputation.note_join(record)
        self.last_seen[record.peer_id] = self.env.now
        for name, obj in (objects or {}).items():
            record.objects.add(name)
            self.object_catalog[name] = obj

    @property
    def member_ids(self) -> List[str]:
        return list(self.info.peers)

    @property
    def is_full(self) -> bool:
        """Has the domain reached the RM's management capacity (§4.1)?"""
        return self.info.n_peers >= self.rm_config.max_peers

    # -------------------------------------------------------------- handlers
    def _handle_load_update(self, msg: Message) -> None:
        if not self.active:
            return
        report: LoadReport = msg.payload["report"]
        if not self.info.has_peer(report.peer_id):
            return  # departed peer's last gasp
        self.info.update_from_report(report)
        self.last_seen[report.peer_id] = self.env.now
        if self.reputation is not None:
            now = self.env.now
            self.reputation.observe_report(
                report,
                self.info.peers[report.peer_id],
                self.info.projected_load(report.peer_id, now),
                now,
            )

    def _handle_task_request(self, msg: Message) -> None:
        if not self.active:
            return
        p = msg.payload
        task = ApplicationTask(
            name=p["name"],
            qos=QoSRequirements(
                deadline=p["deadline"], importance=p.get("importance", 1.0)
            ),
            initial_state=None,  # resolved from the object catalog
            goal_state=p["goal_state"],
            origin_peer=p.get("origin", msg.src), submitted_at=self.env.now,
        )
        self.registry.register(task)
        self._emit(task, "submitted")
        disposition = self.admission.admit(task)
        self.reply(
            msg, protocol.TASK_ACK,
            {"task_id": task.task_id, "disposition": disposition},
            size=protocol.size_of(protocol.TASK_ACK),
        )

    def _handle_task_redirect(self, msg: Message) -> None:
        if not self.active:
            return
        task: ApplicationTask = msg.payload["task"]
        self.stats["redirected_in"] += 1
        self.registry.register(task)
        self.admission.admit(task)

    def _handle_step_done(self, msg: Message) -> None:
        p = msg.payload
        session = self.registry.session(p["task_id"])
        if session is None or p.get("epoch", 0) != session.epoch:
            return
        session.note_step_done(p["step_index"], p["peer_id"])
        graph = self.info.service_graphs.get(p["task_id"])
        if graph is not None:
            started = p.get("started", msg.sent_at)
            finished = p.get("finished", msg.sent_at)
            graph.record_timing(p["step_index"], started, finished)
            if self.reputation is not None:
                rec = self.info.peers.get(p["peer_id"])
                idx = p["step_index"]
                if rec is not None and 0 <= idx < len(graph.steps):
                    self.reputation.observe_step(
                        p["peer_id"], rec, graph.steps[idx].work,
                        finished - started, self.env.now,
                    )

    def _handle_task_done(self, msg: Message) -> None:
        p = msg.payload
        task = self.registry.get(p["task_id"])
        if task is None or task.state in (TaskState.DONE, TaskState.FAILED):
            return
        self.registry.complete(task, p["completed_at"])

    def _handle_qos_update(self, msg: Message) -> None:
        if not self.active:
            return
        self.admission.update_qos(msg.payload, msg.src)

    def _handle_peer_leave(self, msg: Message) -> None:
        if not self.active:
            return
        peer_id = msg.payload["peer_id"]
        if self.info.has_peer(peer_id):
            self.repair.peer_down(peer_id, graceful=True)

    # ---------------------------------------------------------------- routing
    def _send_or_local(
        self, dst: str, kind: str, payload: Dict[str, Any], size: float
    ) -> None:
        """Send a control message, short-circuiting self-addressed ones."""
        if dst == self.node_id:
            handler = self._handlers.get(kind)
            if handler is not None:
                result = handler(
                    Message(kind=kind, src=dst, dst=dst, payload=payload)
                )
                if inspect.isgenerator(result):
                    self.env.process(result, name=f"{dst}:{kind}:local")
            return
        self.send(kind, dst, payload, size=size)

    # -------------------------------------------------------------- monitoring
    def _monitor_loop(self) -> Generator[Event, Any, None]:
        # Sense withdrawn connections (§4.1), then expire lost tasks.
        cfg = self.rm_config
        try:
            while True:
                yield self.env.timeout(cfg.monitor_period)
                now = self.env.now
                self.repair.check_liveness(now)
                self.registry.expire_lost(now, cfg.task_loss_grace)
        except Interrupt:
            return

    def _peer_update_period(self, peer_id: str) -> float:
        # Expected report interval for liveness judgement.
        return self.rm_config.expected_update_period

    def _peer_down(self, peer_id: str, graceful: bool) -> None:
        """Stable failover entry point; delegates to the coordinator."""
        self.repair.peer_down(peer_id, graceful)

    # ------------------------------------------------------------ reassignment
    def _reassign_loop(self) -> Generator[Event, Any, None]:
        cfg = self.rm_config
        try:
            while True:
                yield self.env.timeout(cfg.reassign_period)
                if not self.active or self.info.n_peers == 0:
                    continue
                self.repair.maybe_reassign()
        except Interrupt:
            return

    # ------------------------------------------------------------ join protocol
    def consider_join(self, power: float, bandwidth: float,
                      uptime_score: float) -> str:
        """§4.1 join decision: accept / promote (full) / redirect (busy)."""
        if not self.active:
            return "redirect"
        if self.profiler.utilization > self.rm_config.join_accept_max_util:
            return "redirect"
        if not self.is_full:
            return "accept"
        return "promote"

    # --------------------------------------------------------- failover support
    def snapshot_state(self) -> Dict[str, Any]:
        """Serializable-ish state for backup replication (§4.1)."""
        return self.registry.snapshot_state()

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Load a replicated snapshot (backup preparing for takeover)."""
        self.registry.restore_state(snapshot)

    def activate(self) -> None:
        """Backup takes over as primary (§4.1)."""
        if self.active:
            return
        self.active = True
        self.rm_id = self.node_id
        now = self.env.now
        for pid in list(self.info.peers):
            self.last_seen[pid] = now
        self._start_loops()
        self.registry.takeover()

    # ---------------------------------------------------------------- utilities
    def _emit(self, task: ApplicationTask, event: str) -> None:
        emit_task_event(self, task, event)

    def domain_fairness(self) -> float:
        """Current fairness index over the domain's effective loads."""
        return self.info.load_vector(self.env.now).fairness()

    def __repr__(self) -> str:
        return (
            f"<ResourceManager {self.node_id} domain={self.domain_id} "
            f"peers={self.info.n_peers} tasks={len(self.sessions)} policy="
            f"{self.policy_name} {'active' if self.active else 'passive'}>"
        )

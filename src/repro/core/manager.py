"""The domain Resource Manager (paper §2, §4).

An RM is itself a peer ("Resource Managers are selected among regular
peers") that additionally:

* maintains the domain information base (§3.1) from load updates,
* admits tasks: runs the Fig-3 allocation, sends graph-composition
  messages, launches the streaming session (Fig. 2),
* redirects tasks it cannot admit to other domains, using the gossiped
  Bloom summaries to pick a domain that has the object (§4.5),
* senses withdrawn connections (a peer silent for several update
  periods is declared dead), prunes the resource graph, and *repairs*
  the service graphs of interrupted tasks by re-running the allocation
  from the state the data had reached (§4.1),
* optionally *reassigns* running tasks when the domain overloads
  (§4.5), and
* replicates its state to a backup RM for failover (§4.1; driven by
  :mod:`repro.overlay.failover`).
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro import telemetry
from repro.common.errors import NoFeasibleAllocation
from repro.core import protocol
from repro.core.allocation import AllocationResult, Allocator
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.core.peer import Peer, PeerConfig
from repro.core.session import ComposeOrder, SessionState
from repro.graphs.service_graph import ServiceGraph
from repro.media.objects import MediaObject
from repro.monitoring.profiler import LoadReport
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.sim.trace import Tracer
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask, TaskState

#: Callback signature for task lifecycle events:
#: (task, event) with event in {"submitted", "admitted", "redirected",
#: "rejected", "completed", "failed", "repaired", "reassigned"}.
TaskEventFn = Callable[[ApplicationTask, str], None]


@dataclass
class RMConfig:
    """Resource Manager tunables."""

    #: Maximum peers one RM manages (domain size bound, §4.1).
    max_peers: int = 64
    #: Declare a peer dead after this many missed update periods.
    dead_after_periods: float = 3.5
    #: Peer-liveness scan period (seconds).
    monitor_period: float = 1.0
    #: Grace beyond the deadline before a silent task is declared lost.
    task_loss_grace: float = 10.0
    #: Maximum inter-domain redirects per task.
    max_redirects: int = 3
    #: Enable adaptive reassignment of running tasks under overload.
    enable_reassignment: bool = True
    #: Reassignment check period (seconds).
    reassign_period: float = 5.0
    #: Domain counts as overloaded when mean utilization exceeds this.
    overload_utilization: float = 0.85
    #: Minimum fairness gain for a voluntary task migration.
    reassign_min_gain: float = 0.05
    #: Enable service-graph repair after peer failures.
    enable_repair: bool = True
    #: Importance-aware admission (§3.3's Importance_t, "traded-off"):
    #: when the domain is loaded beyond ``importance_admission_util``,
    #: tasks less important than the running average are admitted under
    #: a *stricter* capacity cap (``low_importance_cap`` x the normal
    #: max utilization) — reserving the last slice of capacity for
    #: important work instead of rejecting outright.  Off by default
    #: (the base paper policy admits on feasibility alone).
    importance_admission: bool = False
    importance_admission_util: float = 0.75
    low_importance_cap: float = 0.7
    #: State-replication period to the backup RM (§4.1).
    sync_period: float = 5.0
    #: Stream duration the resource-graph edge costs are calibrated for;
    #: tasks on objects of other durations scale work proportionally.
    canonical_duration: float = 60.0
    #: The profiler update period members are configured with — the
    #: yardstick for declaring a silent peer dead.
    expected_update_period: float = 2.0
    #: §4.1: "If the Resource Manager has available bandwidth and
    #: processing power, it accepts the processor in its domain" — an
    #: RM busier than this redirects joins even with roster room.
    join_accept_max_util: float = 0.95


class ResourceManager(Peer):
    """A domain leader: admission, allocation, adaptation.

    Parameters
    ----------
    env, network, peer_id:
        As for :class:`Peer`.
    domain_id:
        The domain this RM leads.
    allocator:
        The allocation algorithm (policy under experiment).
    rm_config / peer_config:
        Tunables.
    active:
        ``False`` builds a *passive* backup: handlers installed and
        state received via RM_SYNC, but no admission or monitoring until
        :meth:`activate` (failover).
    on_task_event:
        Metrics hook.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        peer_id: str,
        domain_id: str,
        allocator: Optional[Allocator] = None,
        rm_config: Optional[RMConfig] = None,
        peer_config: Optional[PeerConfig] = None,
        active: bool = True,
        on_task_event: Optional[TaskEventFn] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(
            env, network, peer_id, config=peer_config, rm_id=peer_id,
            tracer=tracer,
        )
        self.domain_id = domain_id
        self.rm_config = rm_config or RMConfig()
        self.allocator = allocator or Allocator()
        self.on_task_event = on_task_event
        self.info = DomainInfoBase(domain_id, peer_id)
        #: Media objects known in the domain, by name.
        self.object_catalog: Dict[str, MediaObject] = {}
        #: All tasks this RM has seen, by id.
        self.tasks: Dict[str, ApplicationTask] = {}
        #: Running sessions by task id.
        self.sessions: Dict[str, SessionState] = {}
        #: Last time each member peer was heard from (update/heartbeat).
        self.last_seen: Dict[str, float] = {}
        #: Other known RMs: rm peer id -> domain id.
        self.known_rms: Dict[str, str] = {}
        self.backup_id: Optional[str] = None
        self.active = active
        self.stats: Dict[str, int] = {
            "admitted": 0, "rejected": 0, "redirected_out": 0,
            "redirected_in": 0, "completed": 0, "missed": 0,
            "failed": 0, "repairs": 0, "reassignments": 0,
        }

        self.on(protocol.LOAD_UPDATE, self._handle_load_update)
        self.on(protocol.TASK_REQUEST, self._handle_task_request)
        self.on(protocol.TASK_REDIRECT, self._handle_task_redirect)
        self.on(protocol.STEP_DONE, self._handle_step_done)
        self.on(protocol.TASK_DONE, self._handle_task_done)
        self.on(protocol.PEER_LEAVE, self._handle_peer_leave)
        self.on(protocol.QOS_UPDATE, self._handle_qos_update)

        self._monitor_proc = None
        self._reassign_proc = None
        if active:
            self._start_loops()

    # ------------------------------------------------------------------ setup
    def _start_loops(self) -> None:
        self._monitor_proc = self.env.process(
            self._monitor_loop(), name=f"rm-monitor:{self.node_id}"
        )
        if self.rm_config.enable_reassignment:
            self._reassign_proc = self.env.process(
                self._reassign_loop(), name=f"rm-reassign:{self.node_id}"
            )

    def _send_load_update(self, report: LoadReport) -> None:
        if self.rm_id == self.node_id:
            # An active RM is its own manager: fold the report in directly.
            if self.active and self.info.has_peer(self.node_id):
                self.info.update_from_report(report)
                self.last_seen[self.node_id] = self.env.now
        else:
            # A passive backup reports to the primary like any member.
            super()._send_load_update(report)

    # -------------------------------------------------------------- membership
    def admit_peer(
        self,
        record: PeerRecord,
        objects: Optional[Dict[str, MediaObject]] = None,
    ) -> None:
        """Add a member to the domain roster (join accepted, §4.1)."""
        self.info.add_peer(record)
        self.last_seen[record.peer_id] = self.env.now
        for name, obj in (objects or {}).items():
            record.objects.add(name)
            self.object_catalog[name] = obj

    @property
    def member_ids(self) -> List[str]:
        return list(self.info.peers)

    @property
    def is_full(self) -> bool:
        """Has the domain reached the RM's management capacity (§4.1)?"""
        return self.info.n_peers >= self.rm_config.max_peers

    # -------------------------------------------------------------- handlers
    def _handle_load_update(self, msg: Message) -> None:
        if not self.active:
            return
        report: LoadReport = msg.payload["report"]
        if not self.info.has_peer(report.peer_id):
            return  # departed peer's last gasp
        self.info.update_from_report(report)
        self.last_seen[report.peer_id] = self.env.now

    def _handle_task_request(self, msg: Message) -> None:
        if not self.active:
            return
        p = msg.payload
        task = ApplicationTask(
            name=p["name"],
            qos=QoSRequirements(
                deadline=p["deadline"], importance=p.get("importance", 1.0)
            ),
            initial_state=None,  # resolved from the object catalog
            goal_state=p["goal_state"],
            origin_peer=p.get("origin", msg.src),
            submitted_at=self.env.now,
        )
        self.tasks[task.task_id] = task
        self._emit(task, "submitted")
        disposition = self._admit(task)
        self.reply(
            msg, protocol.TASK_ACK,
            {"task_id": task.task_id, "disposition": disposition},
            size=protocol.size_of(protocol.TASK_ACK),
        )

    def _handle_task_redirect(self, msg: Message) -> None:
        if not self.active:
            return
        task: ApplicationTask = msg.payload["task"]
        self.stats["redirected_in"] += 1
        self.tasks[task.task_id] = task
        self._admit(task)

    def _handle_step_done(self, msg: Message) -> None:
        p = msg.payload
        session = self.sessions.get(p["task_id"])
        if session is None or p.get("epoch", 0) != session.epoch:
            return
        session.note_step_done(p["step_index"], p["peer_id"])
        graph = self.info.service_graphs.get(p["task_id"])
        if graph is not None:
            graph.record_timing(
                p["step_index"],
                p.get("started", msg.sent_at),
                p.get("finished", msg.sent_at),
            )

    def _handle_task_done(self, msg: Message) -> None:
        p = msg.payload
        task = self.tasks.get(p["task_id"])
        if task is None or task.state in (TaskState.DONE, TaskState.FAILED):
            return
        task.mark_done(p["completed_at"])
        self._cleanup_task(task.task_id)
        self.stats["completed"] += 1
        if task.outcome is not None and task.outcome.value == "missed":
            self.stats["missed"] += 1
        self._emit(task, "completed")

    def _handle_qos_update(self, msg: Message) -> None:
        """§4.5: a user changed a running task's QoS requirements.

        Only the submitting peer may change a task's QoS.  The new
        deadline is propagated to the session participants via a
        refreshed compose order (same epoch: peers adopt it in place),
        so jobs queued *after* the change are scheduled against the new
        deadline; jobs already on a CPU keep their old one (they were
        released before the user changed their mind).
        """
        if not self.active:
            return
        p = msg.payload
        task = self.tasks.get(p["task_id"])
        if task is None or task.state not in (
            TaskState.ALLOCATED, TaskState.RUNNING
        ):
            return
        if p.get("origin", msg.src) != task.origin_peer:
            return  # only the owner may renegotiate
        new_rel = p["deadline_abs"] - task.submitted_at
        if new_rel <= 0:
            return  # a deadline already in the past is meaningless
        task.qos = QoSRequirements(
            deadline=new_rel,
            importance=p.get("importance", task.qos.importance),
            constraints=dict(task.qos.constraints),
        )
        session = self.sessions.get(task.task_id)
        if session is not None:
            session.order.abs_deadline = task.absolute_deadline
            session.order.importance = task.qos.importance
            for peer_id in session.graph.peers():
                if self.info.has_peer(peer_id) or peer_id == self.node_id:
                    self._send_or_local(
                        peer_id, protocol.COMPOSE,
                        {"order": session.order},
                        size=protocol.size_of(protocol.COMPOSE),
                    )
        self._emit(task, "qos_updated")

    def _handle_peer_leave(self, msg: Message) -> None:
        if not self.active:
            return
        peer_id = msg.payload["peer_id"]
        if self.info.has_peer(peer_id):
            self._peer_down(peer_id, graceful=True)

    # -------------------------------------------------------------- admission
    def _admit(self, task: ApplicationTask) -> str:
        """Try to allocate and launch *task*; returns the disposition.

        Dispositions: ``"accepted"``, ``"redirected"``, ``"rejected"``.
        """
        now = self.env.now
        sources = self.info.peers_with_object(task.name)
        obj = self.object_catalog.get(task.name)
        if not sources or obj is None:
            return self._redirect_or_reject(task, reason="no_object")
        allocator = self._allocator_for(task, now)
        # Prefer the least-loaded replica holder as the stream source.
        source_peer = min(
            sources, key=lambda pid: self.info.effective_load(pid, now)
        )
        task.initial_state = obj.fmt
        work_scale = obj.duration_s / self.rm_config.canonical_duration
        task.meta["work_scale"] = work_scale
        if task.initial_state == task.goal_state:
            # Degenerate: no transcoding needed; direct transfer.
            result = None
            path: List[Any] = []
        else:
            try:
                result = allocator.allocate(
                    self.info,
                    self.network,
                    task,
                    v_init=task.initial_state,
                    v_sol=task.goal_state,
                    source_peer=source_peer,
                    sink_peer=task.origin_peer,
                    in_bytes=obj.size_bytes,
                    now=now,
                    work_scale=work_scale,
                )
            except NoFeasibleAllocation as exc:
                return self._redirect_or_reject(task, reason=exc.reason)
            path = result.path
        self._launch(task, result, path, source_peer, obj)
        return "accepted"

    def _launch(
        self,
        task: ApplicationTask,
        result: Optional[AllocationResult],
        path: List[Any],
        source_peer: str,
        obj: MediaObject,
    ) -> None:
        now = self.env.now
        fairness = result.fairness if result else self.info.load_vector(now).fairness()
        task.mark_allocated(
            [(e.service_id, e.peer_id) for e in path], fairness,
            self.domain_id,
        )
        graph = ServiceGraph.from_edges(
            task.task_id, path, source_peer, task.origin_peer,
            work_scale=task.meta.get("work_scale", 1.0),
        )
        self.info.register_service_graph(graph)
        if result is not None:
            self.info.project_allocation(
                task.task_id, result.deltas, expires_at=task.absolute_deadline
            )
        order = ComposeOrder(
            task_id=task.task_id,
            rm_id=self.node_id,
            source_peer=source_peer,
            sink_peer=task.origin_peer,
            steps=list(graph.steps),
            abs_deadline=task.absolute_deadline,
            importance=task.qos.importance,
            in_bytes=obj.size_bytes,
            epoch=0,
        )
        session = SessionState(
            task_id=task.task_id, graph=graph, order=order, started_at=now,
        )
        session.data_holder = source_peer
        self.sessions[task.task_id] = session
        for peer_id in graph.peers():
            self._send_or_local(
                peer_id, protocol.COMPOSE, {"order": order},
                size=protocol.size_of(protocol.COMPOSE),
            )
        self._send_or_local(
            source_peer, protocol.START_STREAM,
            {"task_id": task.task_id, "from_step": 0},
            size=protocol.size_of(protocol.START_STREAM),
        )
        task.mark_running()
        self.stats["admitted"] += 1
        self._emit(task, "admitted")

    def _send_or_local(
        self, dst: str, kind: str, payload: Dict[str, Any], size: float
    ) -> None:
        """Send a control message, short-circuiting self-addressed ones."""
        if dst == self.node_id:
            handler = self._handlers.get(kind)
            if handler is not None:
                result = handler(
                    Message(kind=kind, src=dst, dst=dst, payload=payload)
                )
                if inspect.isgenerator(result):
                    self.env.process(result, name=f"{dst}:{kind}:local")
            return
        self.send(kind, dst, payload, size=size)

    def _allocator_for(self, task: ApplicationTask, now: float):
        """Pick the allocator variant for this admission.

        With importance-aware admission enabled (RMConfig) and the
        domain loaded past the activation threshold, a task less
        important than the running average is allocated under a reduced
        capacity cap — the top slice of every peer stays reserved for
        important work.  Everyone else gets the normal allocator.
        """
        cfg = self.rm_config
        if not cfg.importance_admission or not self.sessions:
            return self.allocator
        utils = self.info.utilization_vector(now)
        if not utils:
            return self.allocator
        mean_util = sum(utils.values()) / len(utils)
        if mean_util < cfg.importance_admission_util:
            return self.allocator
        running = [
            self.tasks[tid].qos.importance
            for tid in self.sessions
            if tid in self.tasks
        ]
        if not running or task.qos.importance >= (
            sum(running) / len(running)
        ):
            return self.allocator
        base = self.allocator
        strict_est = dataclasses.replace(
            base.estimator,
            max_utilization=base.estimator.max_utilization
            * cfg.low_importance_cap,
        )
        return dataclasses.replace(base, estimator=strict_est)

    def _redirect_or_reject(self, task: ApplicationTask, reason: str) -> str:
        """§4.5: forward to a better domain, or reject."""
        target = self._pick_redirect_target(task)
        if target is not None and task.redirects < self.rm_config.max_redirects:
            task.redirects += 1
            self.stats["redirected_out"] += 1
            self.send(
                protocol.TASK_REDIRECT, target, {"task": task},
                size=protocol.size_of(protocol.TASK_REDIRECT),
            )
            self._emit(task, "redirected")
            return "redirected"
        task.mark_rejected(self.env.now, reason=reason)
        self.stats["rejected"] += 1
        self._emit(task, "rejected")
        return "rejected"

    def _pick_redirect_target(self, task: ApplicationTask) -> Optional[str]:
        """Choose another RM using the gossiped summaries (§4.5).

        Prefers domains whose summary claims the object; among those,
        the least-utilized by summarized mean load.  Falls back to any
        other known RM when no summary matches (the Bloom filter may
        also false-positive — the target then redirects again).
        """
        best: Optional[str] = None
        best_score = float("inf")
        fallback: Optional[str] = None
        for rm_id, _domain in self.known_rms.items():
            if rm_id == self.node_id:
                continue
            summary = self.info.remote_summaries.get(rm_id)
            if summary is None:
                fallback = fallback or rm_id
                continue
            if not summary.may_have_object(task.name):
                continue
            score = summary.mean_utilization
            if score < best_score:
                best, best_score = rm_id, score
        return best or fallback

    # -------------------------------------------------------------- monitoring
    def _monitor_loop(self) -> Generator[Event, Any, None]:
        cfg = self.rm_config
        try:
            while True:
                yield self.env.timeout(cfg.monitor_period)
                now = self.env.now
                # 1. Sense withdrawn connections (silent peers, §4.1).
                for peer_id in list(self.info.peers):
                    if peer_id == self.node_id:
                        continue
                    silent = now - self.last_seen.get(peer_id, now)
                    limit = cfg.dead_after_periods * max(
                        self._peer_update_period(peer_id), cfg.monitor_period
                    )
                    if silent > limit:
                        self._peer_down(peer_id, graceful=False)
                # 2. Declare long-overdue silent tasks lost.
                for task_id in list(self.sessions):
                    task = self.tasks.get(task_id)
                    if task is None:
                        self.sessions.pop(task_id, None)
                        continue
                    if now > task.absolute_deadline + cfg.task_loss_grace:
                        self._fail_task(task, "lost (no completion)")
        except Interrupt:
            return

    def _peer_update_period(self, peer_id: str) -> float:
        """Expected report interval for liveness judgement."""
        return self.rm_config.expected_update_period

    def _peer_down(self, peer_id: str, graceful: bool) -> None:
        """Handle a departed/failed member (§4.1)."""
        if not self.info.has_peer(peer_id):
            return
        removed_edges = self.info.remove_peer(peer_id)
        self.last_seen.pop(peer_id, None)
        # Objects hosted only there become unavailable.
        for name in list(self.object_catalog):
            if not self.info.peers_with_object(name):
                del self.object_catalog[name]
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "rm.peer_down", rm=self.node_id, peer=peer_id,
                graceful=graceful, edges=len(removed_edges),
            )
        # Repair interrupted tasks (the roster no longer lists the dead
        # peer, so scan the session graphs directly).
        affected = [
            s.graph for s in self.sessions.values()
            if s.graph.uses_peer(peer_id)
        ]
        for graph in affected:
            task = self.tasks.get(graph.task_id)
            if task is None:
                continue
            if not self.rm_config.enable_repair:
                self._fail_task(task, f"peer {peer_id} failed")
                continue
            self._repair_task(task, dead_peer=peer_id)

    def _repair_task(self, task: ApplicationTask, dead_peer: str) -> None:
        """Re-run the allocation from the task's current data state (§4.1)."""
        session = self.sessions.get(task.task_id)
        if session is None:
            return
        if dead_peer == task.origin_peer:
            self._fail_task(task, "origin peer failed")
            return
        # Where is the data now, and in which state?
        resume = session.resume_point()
        holder = session.resume_source()
        graph = session.graph
        if holder is None or holder == dead_peer or not self.info.has_peer(holder):
            # The data died with the holder: restart from the source.
            holder = graph.source_peer
            resume = 0
            if holder == dead_peer or not self.info.has_peer(holder):
                # Source gone too: another replica?
                candidates = self.info.peers_with_object(task.name)
                if not candidates:
                    self._fail_task(task, "source object lost")
                    return
                holder = candidates[0]
        if resume == 0:
            v_now = task.initial_state
            in_bytes = self.object_catalog[task.name].size_bytes \
                if task.name in self.object_catalog else 0.0
        else:
            v_now = graph.steps[resume - 1].dst_state
            in_bytes = graph.steps[resume - 1].out_bytes
        # Remaining conversion work still needed?
        if v_now == task.goal_state:
            remaining_path: List[Any] = []
            result = None
        else:
            try:
                result = self.allocator.allocate(
                    self.info,
                    self.network,
                    task,
                    v_init=v_now,
                    v_sol=task.goal_state,
                    source_peer=holder,
                    sink_peer=task.origin_peer,
                    in_bytes=in_bytes,
                    now=self.env.now,
                    work_scale=task.meta.get("work_scale", 1.0),
                )
                remaining_path = result.path
            except NoFeasibleAllocation:
                self._fail_task(task, "repair found no allocation")
                return
        # Rebuild the service graph: done prefix + fresh suffix.
        scale = task.meta.get("work_scale", 1.0)
        suffix = ServiceGraph.from_edges(
            task.task_id, remaining_path, holder, task.origin_peer,
            work_scale=scale, index_offset=resume,
        )
        graph.steps = list(graph.steps[:resume]) + list(suffix.steps)
        session.epoch += 1
        session.repairs += 1
        task.repairs += 1
        self.stats["repairs"] += 1
        self.info.release_projection(task.task_id)
        if result is not None:
            self.info.project_allocation(
                task.task_id, result.deltas, expires_at=task.absolute_deadline
            )
        task.allocation = graph.allocation_pairs()
        order = ComposeOrder(
            task_id=task.task_id,
            rm_id=self.node_id,
            source_peer=graph.source_peer,
            sink_peer=task.origin_peer,
            steps=list(graph.steps),
            abs_deadline=task.absolute_deadline,
            importance=task.qos.importance,
            in_bytes=session.order.in_bytes,
            resume_from=resume,
            epoch=session.epoch,
        )
        session.order = order
        # Everyone still involved gets the new chain; the holder resumes.
        recipients = set(graph.peers()) | {holder}
        for peer_id in recipients:
            if peer_id == dead_peer:
                continue
            self._send_or_local(
                peer_id, protocol.COMPOSE, {"order": order},
                size=protocol.size_of(protocol.COMPOSE),
            )
        self._send_or_local(
            holder, protocol.START_STREAM,
            {"task_id": task.task_id, "from_step": resume},
            size=protocol.size_of(protocol.START_STREAM),
        )
        self._emit(task, "repaired")

    def _fail_task(self, task: ApplicationTask, reason: str) -> None:
        task.mark_failed(self.env.now, reason)
        self._cleanup_task(task.task_id)
        self.stats["failed"] += 1
        self._emit(task, "failed")

    def _cleanup_task(self, task_id: str) -> None:
        self.sessions.pop(task_id, None)
        self.info.drop_service_graph(task_id)
        self.info.release_projection(task_id)

    # ------------------------------------------------------------ reassignment
    def _reassign_loop(self) -> Generator[Event, Any, None]:
        cfg = self.rm_config
        try:
            while True:
                yield self.env.timeout(cfg.reassign_period)
                if not self.active or self.info.n_peers == 0:
                    continue
                self._maybe_reassign()
        except Interrupt:
            return

    def _maybe_reassign(self) -> None:
        """§4.5: under overload/unfairness, migrate a running task."""
        now = self.env.now
        utils = self.info.utilization_vector(now)
        if not utils:
            return
        mean_util = sum(utils.values()) / len(utils)
        # §4.5: reassignment is an *overload* response — a merely uneven
        # but lightly loaded domain is left alone (migrating a healthy
        # task costs a restart of its remaining steps).
        if mean_util < self.rm_config.overload_utilization:
            return
        # Candidate: the running task with the most remaining steps on the
        # most-loaded peer, lowest importance first.
        hottest = max(utils, key=lambda p: utils[p])
        candidates: List[tuple[float, ApplicationTask, SessionState]] = []
        for session in self.sessions.values():
            task = self.tasks.get(session.task_id)
            if task is None or task.state is not TaskState.RUNNING:
                continue
            resume = session.resume_point()
            future = session.graph.steps[resume:]
            if any(s.peer_id == hottest for s in future):
                candidates.append((task.qos.importance, task, session))
        if not candidates:
            return
        candidates.sort(key=lambda t: t[0])
        _, task, session = candidates[0]
        self._migrate_task(task, session, avoid_peer=hottest)

    def _migrate_task(
        self, task: ApplicationTask, session: SessionState, avoid_peer: str
    ) -> None:
        """Re-allocate a running task's remaining steps away from a hot peer."""
        resume = session.resume_point()
        graph = session.graph
        holder = session.resume_source() or graph.source_peer
        if not self.info.has_peer(holder):
            return
        if resume == 0:
            v_now = task.initial_state
            in_bytes = session.order.in_bytes
        else:
            v_now = graph.steps[resume - 1].dst_state
            in_bytes = graph.steps[resume - 1].out_bytes
        if v_now == task.goal_state:
            return
        # Temporarily bias the load view against the hot peer so the
        # allocator routes around it.
        loads = self.info.load_vector(self.env.now)
        old_fairness = loads.fairness()
        try:
            result = self.allocator.allocate(
                self.info,
                self.network,
                task,
                v_init=v_now,
                v_sol=task.goal_state,
                source_peer=holder,
                sink_peer=task.origin_peer,
                in_bytes=in_bytes,
                now=self.env.now,
                work_scale=task.meta.get("work_scale", 1.0),
            )
        except NoFeasibleAllocation:
            return
        uses_hot = any(e.peer_id == avoid_peer for e in result.path)
        current_future = graph.steps[resume:]
        same = [
            (s.service_id, s.peer_id) for s in current_future
        ] == [(e.service_id, e.peer_id) for e in result.path]
        if (
            same
            or uses_hot
            or result.fairness
            < old_fairness + self.rm_config.reassign_min_gain
        ):
            return
        # Cancel the not-yet-run suffix at its old peers.
        for step in current_future:
            self._send_or_local(
                step.peer_id, protocol.CANCEL_TASK,
                {"task_id": task.task_id},
                size=protocol.size_of(protocol.CANCEL_TASK),
            )
        suffix = ServiceGraph.from_edges(
            task.task_id, result.path, holder, task.origin_peer,
            work_scale=task.meta.get("work_scale", 1.0), index_offset=resume,
        )
        graph.steps = list(graph.steps[:resume]) + list(suffix.steps)
        session.epoch += 1
        self.stats["reassignments"] += 1
        self.info.release_projection(task.task_id)
        self.info.project_allocation(
            task.task_id, result.deltas, expires_at=task.absolute_deadline
        )
        task.allocation = graph.allocation_pairs()
        order = ComposeOrder(
            task_id=task.task_id,
            rm_id=self.node_id,
            source_peer=graph.source_peer,
            sink_peer=task.origin_peer,
            steps=list(graph.steps),
            abs_deadline=task.absolute_deadline,
            importance=task.qos.importance,
            in_bytes=session.order.in_bytes,
            resume_from=resume,
            epoch=session.epoch,
        )
        session.order = order
        for peer_id in set(graph.peers()) | {holder}:
            self._send_or_local(
                peer_id, protocol.COMPOSE, {"order": order},
                size=protocol.size_of(protocol.COMPOSE),
            )
        self._send_or_local(
            holder, protocol.START_STREAM,
            {"task_id": task.task_id, "from_step": resume},
            size=protocol.size_of(protocol.START_STREAM),
        )
        self._emit(task, "reassigned")

    # ------------------------------------------------------------ join protocol
    def consider_join(self, power: float, bandwidth: float,
                      uptime_score: float) -> str:
        """§4.1 admission decision for a joining peer.

        Returns ``"accept"`` when the domain has room, ``"promote"``
        when it is full but the newcomer could lead a new domain
        (qualification is judged by the overlay), ``"redirect"``
        otherwise.
        """
        if not self.active:
            return "redirect"
        if self.profiler.utilization > self.rm_config.join_accept_max_util:
            # §4.1: no spare management capacity at this RM right now.
            return "redirect"
        if not self.is_full:
            return "accept"
        return "promote"

    # --------------------------------------------------------- failover support
    def snapshot_state(self) -> Dict[str, Any]:
        """Serializable-ish state for backup replication (§4.1).

        Structures are copied shallowly: records and graphs are rebuilt
        on restore, so the backup's post-takeover mutations cannot leak
        back into the dead primary's objects.
        """
        return {
            "domain_id": self.domain_id,
            "peers": {
                pid: rec.clone() for pid, rec in self.info.peers.items()
            },
            "object_catalog": dict(self.object_catalog),
            "resource_graph": self.info.resource_graph.copy(),
            "tasks": dict(self.tasks),
            "sessions": dict(self.sessions),
            "service_graphs": dict(self.info.service_graphs),
            "known_rms": dict(self.known_rms),
            "remote_summaries": dict(self.info.remote_summaries),
            "last_seen": dict(self.last_seen),
        }

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Load a replicated snapshot (backup preparing for takeover)."""
        self.domain_id = snapshot["domain_id"]
        self.info = DomainInfoBase(self.domain_id, self.node_id)
        for pid, rec in snapshot["peers"].items():
            self.info.add_peer(rec)
        self.info.resource_graph = snapshot["resource_graph"]
        self.info.service_graphs = dict(snapshot["service_graphs"])
        self.info.remote_summaries = dict(snapshot["remote_summaries"])
        self.object_catalog = dict(snapshot["object_catalog"])
        self.tasks = dict(snapshot["tasks"])
        self.sessions = dict(snapshot["sessions"])
        self.known_rms = dict(snapshot["known_rms"])
        self.last_seen = dict(snapshot["last_seen"])

    def activate(self) -> None:
        """Backup takes over as primary (§4.1).

        Starts the monitoring loops, tells every member to re-point its
        reports here, and re-addresses the running sessions' compose
        orders so completions flow to the new RM.
        """
        if self.active:
            return
        self.active = True
        self.rm_id = self.node_id
        now = self.env.now
        for pid in list(self.info.peers):
            self.last_seen[pid] = now
        self._start_loops()
        for pid in self.info.peers:
            if pid == self.node_id:
                continue
            self.send(
                protocol.RM_TAKEOVER, pid, {"rm_id": self.node_id},
                size=protocol.size_of(protocol.RM_TAKEOVER),
            )
        # Re-issue compose orders with ourselves as coordinator so
        # TASK_DONE / STEP_DONE reach the new RM.
        for session in self.sessions.values():
            order = session.order
            order.rm_id = self.node_id
            for pid in session.graph.peers():
                if self.info.has_peer(pid) or pid == self.node_id:
                    self._send_or_local(
                        pid, protocol.COMPOSE, {"order": order},
                        size=protocol.size_of(protocol.COMPOSE),
                    )
        if self.tracer is not None:
            self.tracer.record(now, "rm.takeover", rm=self.node_id,
                               domain=self.domain_id)
        tel = telemetry.current()
        if tel.enabled:
            tel.tracer.event(
                "rm.takeover", node=self.node_id, domain=self.domain_id
            )

    # ---------------------------------------------------------------- utilities
    #: ``_emit`` events that end a task's lifecycle (close its span).
    _TERMINAL_EVENTS = frozenset({"completed", "rejected", "failed"})

    def _emit(self, task: ApplicationTask, event: str) -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, f"task.{event}", task=task.task_id,
                rm=self.node_id,
            )
        tel = telemetry.current()
        if tel.enabled:
            trace_id = f"task:{task.task_id}"
            if event == "submitted":
                tel.tracer.start_span(
                    task.task_id, kind=telemetry.TASK, node=self.node_id,
                    trace_id=trace_id, key=trace_id,
                    origin=task.origin_peer, deadline=task.qos.deadline,
                    importance=task.qos.importance,
                )
                tel.metrics.counter("tasks_submitted_total").inc()
            elif event in self._TERMINAL_EVENTS:
                outcome = task.outcome.value if task.outcome else None
                tel.tracer.end_span_key(trace_id, status=event,
                                        outcome=outcome)
                tel.metrics.counter(
                    "tasks_finished_total", event=event
                ).inc()
            else:
                span = tel.tracer.open_span(trace_id)
                tel.tracer.event(
                    f"task.{event}", node=self.node_id, trace_id=trace_id,
                    span_id=span.span_id if span else None,
                )
        if self.on_task_event is not None:
            self.on_task_event(task, event)

    def domain_fairness(self) -> float:
        """Current fairness index over the domain's effective loads."""
        return self.info.load_vector(self.env.now).fairness()

    def __repr__(self) -> str:
        return (
            f"<ResourceManager {self.node_id} domain={self.domain_id} "
            f"peers={self.info.n_peers} tasks={len(self.sessions)} "
            f"{'active' if self.active else 'passive'}>"
        )

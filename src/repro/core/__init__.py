"""The paper's primary contribution: decentralized resource management.

* :mod:`repro.core.fairness` — the Jain Fairness Index (eq. 1) and
  incremental what-if evaluation used by the allocator.
* :mod:`repro.core.estimate` — completion-time estimation from the RM's
  (possibly stale) load view.
* :mod:`repro.core.allocation` — the Figure-3 task allocation algorithm.
* :mod:`repro.core.info_base` — the Resource Manager's information base
  (§3.1): peer loads, objects, services, resource graph, summaries.
* :mod:`repro.core.peer` — a processing peer: Profiler + Local Scheduler
  + service hosting (§2, §3.2).
* :mod:`repro.core.manager` — the domain Resource Manager: admission,
  allocation, session launch, feedback collection, adaptation (§4).
* :mod:`repro.core.session` — distributed execution of a service graph.
"""

from repro.core.allocation import AllocationResult, Allocator
from repro.core.estimate import CompletionTimeEstimator
from repro.core.fairness import (
    LoadVector,
    fairness_after_assignment,
    jain_fairness,
    optimal_single_load,
)
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.core.manager import ResourceManager, RMConfig
from repro.core.peer import Peer, PeerConfig

__all__ = [
    "AllocationResult",
    "Allocator",
    "CompletionTimeEstimator",
    "DomainInfoBase",
    "LoadVector",
    "Peer",
    "PeerConfig",
    "PeerRecord",
    "RMConfig",
    "ResourceManager",
    "fairness_after_assignment",
    "jain_fairness",
    "optimal_single_load",
]

"""The pipeline catalog: forms, allowed stages, reachability.

Satisfies the same informal protocol as
:class:`repro.workloads.MediaCatalog`, so the generic workload stack
(:func:`repro.workloads.population.generate_specs`,
:class:`repro.workloads.arrivals.TaskArrivalProcess`) runs on it
unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pipelines.forms import DataForm
from repro.pipelines.stages import PipelineCostModel, StageSpec


def default_forms() -> List[DataForm]:
    """A tele-medicine form set: ECG, EEG and SpO2 signals."""
    return [
        # ECG: 500 Hz raw, filterable, compressible, event-scannable.
        DataForm("ecg", "raw", 500.0),
        DataForm("ecg", "filtered", 500.0),
        DataForm("ecg", "filtered", 250.0),
        DataForm("ecg", "compressed", 500.0),
        DataForm("ecg", "compressed", 250.0),
        DataForm("ecg", "events", 500.0),
        # EEG: 256 Hz multichannel-ish.
        DataForm("eeg", "raw", 256.0),
        DataForm("eeg", "filtered", 256.0),
        DataForm("eeg", "compressed", 256.0),
        DataForm("eeg", "delta", 256.0),
        # SpO2: slow but always-on.
        DataForm("spo2", "raw", 25.0),
        DataForm("spo2", "filtered", 25.0),
        DataForm("spo2", "delta", 25.0),
    ]


#: Which algorithm takes a stage transition (src_stage, dst_stage).
_STAGE_ALGORITHMS: Dict[Tuple[str, str], str] = {
    ("raw", "filtered"): "bandpass_filter",
    ("raw", "delta"): "delta_encode",
    ("filtered", "compressed"): "wavelet_compress",
    ("filtered", "delta"): "delta_encode",
    ("filtered", "events"): "event_detect",
    ("raw", "events"): "event_detect",
    ("compressed", "events"): "event_detect",
}


@dataclass
class PipelineCatalog:
    """Forms plus the type-level stage pool between them."""

    forms: List[DataForm] = field(default_factory=default_forms)
    cost_model: PipelineCostModel = field(default_factory=PipelineCostModel)
    canonical_duration: float = 60.0

    def __post_init__(self) -> None:
        if len(self.forms) < 2:
            raise ValueError("need at least two forms")
        if self.canonical_duration <= 0:
            raise ValueError("canonical_duration must be positive")
        self._stages: Optional[List[StageSpec]] = None

    # -- the stage pool -------------------------------------------------------
    def stages(self) -> List[StageSpec]:
        """All offerable processing stages between catalog forms."""
        if self._stages is None:
            out: List[StageSpec] = []
            for src in self.forms:
                for dst in self.forms:
                    if src == dst or src.kind != dst.kind:
                        continue
                    if dst.rate_hz > src.rate_hz:
                        continue  # no upsampling services
                    if src.stage == dst.stage:
                        if dst.rate_hz < src.rate_hz:
                            out.append(StageSpec(src, dst, "downsample"))
                        continue
                    algo = _STAGE_ALGORITHMS.get((src.stage, dst.stage))
                    if algo is not None:
                        out.append(StageSpec(src, dst, algo))
            self._stages = out
        return self._stages

    # -- MediaCatalog-compatible protocol ------------------------------------
    def conversions(self) -> List[Tuple[DataForm, DataForm]]:
        return [(s.src, s.dst) for s in self.stages()]

    def work_of(self, src: DataForm, dst: DataForm) -> float:
        """Canonical work of one stage instance (src -> dst)."""
        for stage in self.stages():
            if stage.src == src and stage.dst == dst:
                return self.cost_model.work(
                    stage.algorithm, src, self.canonical_duration
                )
        raise ValueError(f"no stage {src} -> {dst} in catalog")

    def out_bytes_of(self, dst: DataForm) -> float:
        return dst.bytes_per_second() * self.canonical_duration

    def reachable_from(
        self, src: DataForm, max_hops: int = 3
    ) -> List[DataForm]:
        adjacency: Dict[DataForm, List[DataForm]] = {}
        for a, b in self.conversions():
            adjacency.setdefault(a, []).append(b)
        seen = {src: 0}
        queue = deque([src])
        while queue:
            form = queue.popleft()
            depth = seen[form]
            if depth >= max_hops:
                continue
            for nxt in adjacency.get(form, ()):
                if nxt not in seen:
                    seen[nxt] = depth + 1
                    queue.append(nxt)
        seen.pop(src, None)
        return list(seen)

    def source_formats(self) -> List[DataForm]:
        """Stored recordings are raw captures."""
        return [f for f in self.forms if f.stage == "raw"]

"""Processing stages and their CPU cost model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipelines.forms import ALGORITHM_COMPLEXITY, DataForm


@dataclass
class PipelineCostModel:
    """Work units to run an algorithm over a signal.

    ``work = c * complexity(algorithm) * kilosamples_processed`` where
    kilosamples are counted at the *input* rate — downsampling a
    high-rate stream costs more than filtering a low-rate one.
    Defaults put one second of 500 Hz ECG bandpass filtering at
    ~0.2 work units, so a power-10 peer sustains ~50 concurrent
    real-time ECG filters.
    """

    c: float = 0.5

    def work_per_second(self, algorithm: str, src: DataForm) -> float:
        try:
            complexity = ALGORITHM_COMPLEXITY[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"known: {sorted(ALGORITHM_COMPLEXITY)}"
            ) from None
        return self.c * complexity * src.kilosample_rate

    def work(
        self, algorithm: str, src: DataForm, duration_s: float
    ) -> float:
        if duration_s <= 0:
            raise ValueError(f"invalid duration {duration_s}")
        return self.work_per_second(algorithm, src) * duration_s


@dataclass(frozen=True)
class StageSpec:
    """One processing-stage type: a directed form transformation."""

    src: DataForm
    dst: DataForm
    algorithm: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("stage source and destination forms equal")
        if self.algorithm not in ALGORITHM_COMPLEXITY:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.src.kind != self.dst.kind:
            raise ValueError(
                f"stages transform one signal kind: "
                f"{self.src.kind} != {self.dst.kind}"
            )

    @property
    def service_id(self) -> str:
        return f"{self.algorithm}:{self.src.label()}>{self.dst.label()}"

    def __str__(self) -> str:
        return self.service_id

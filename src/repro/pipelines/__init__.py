"""A second application domain: distributed sensor-processing pipelines.

§1 motivates the architecture with "multimedia, telecommunications,
business enterprises and tele-medicine".  This package instantiates the
tele-medicine case: physiological sensor recordings (ECG, EEG, SpO2)
that must be filtered, downsampled, compressed or scanned for events by
services hosted at peers before delivery to a clinician's device — the
same resource-graph machinery as transcoding, with *data forms* as
states and *processing stages* as edges.

Nothing in :mod:`repro.core` changes: this package only provides a
catalog that satisfies the same informal protocol as
:class:`repro.workloads.MediaCatalog` (``conversions``, ``work_of``,
``out_bytes_of``, ``reachable_from``, ``source_formats``,
``canonical_duration``), proving the middleware is application-neutral.
"""

from repro.pipelines.catalog import PipelineCatalog
from repro.pipelines.forms import ALGORITHM_COMPLEXITY, DataForm
from repro.pipelines.recordings import SensorRecording
from repro.pipelines.stages import PipelineCostModel, StageSpec

__all__ = [
    "ALGORITHM_COMPLEXITY",
    "DataForm",
    "PipelineCatalog",
    "PipelineCostModel",
    "SensorRecording",
    "StageSpec",
]

"""Sensor recordings: the stored data objects of the pipeline domain."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.pipelines.forms import DataForm


@dataclass(frozen=True)
class SensorRecording:
    """A captured signal stored at a peer.

    Attribute-compatible with :class:`repro.media.MediaObject`
    (``name``, ``fmt``, ``duration_s``, ``size_bytes``), so the
    Resource Manager and workload machinery accept it unchanged.
    """

    name: str
    fmt: DataForm
    duration_s: float = 60.0
    content_hash: str = field(default="")

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"invalid duration {self.duration_s}")
        if not self.content_hash:
            digest = hashlib.sha256(
                f"{self.name}|{self.fmt.label()}".encode()
            ).hexdigest()
            object.__setattr__(self, "content_hash", digest[:16])

    @property
    def size_bytes(self) -> float:
        return self.fmt.bytes_per_second() * self.duration_s

    def __str__(self) -> str:
        return f"{self.name}[{self.fmt.label()}]"

"""Data forms: the application states of a sensor pipeline."""

from __future__ import annotations

from dataclasses import dataclass

#: Relative CPU complexity of each processing algorithm class
#: (work units per kilosample processed).
ALGORITHM_COMPLEXITY: dict[str, float] = {
    "identity": 0.0,
    "bandpass_filter": 0.8,
    "notch_filter": 0.5,
    "downsample": 0.3,
    "wavelet_compress": 2.0,
    "delta_encode": 0.6,
    "event_detect": 1.5,
}

#: Encoding overhead: bytes per sample in each representation.
_BYTES_PER_SAMPLE: dict[str, float] = {
    "raw": 4.0,          # float32 samples
    "filtered": 4.0,
    "compressed": 0.5,   # ~8x wavelet compression
    "delta": 1.5,
    "events": 0.05,      # sparse annotations
}


@dataclass(frozen=True, order=True)
class DataForm:
    """One representation of a sensor signal (a resource-graph state).

    Attributes
    ----------
    kind:
        The signal ("ecg", "eeg", "spo2", ...).
    stage:
        Processing state, one of raw / filtered / compressed / delta /
        events.
    rate_hz:
        Samples per second in this form.
    """

    kind: str
    stage: str
    rate_hz: float

    def __post_init__(self) -> None:
        if self.stage not in _BYTES_PER_SAMPLE:
            raise ValueError(
                f"unknown stage {self.stage!r}; "
                f"known: {sorted(_BYTES_PER_SAMPLE)}"
            )
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")

    def bytes_per_second(self) -> float:
        """Wire volume of a stream in this form."""
        return _BYTES_PER_SAMPLE[self.stage] * self.rate_hz

    @property
    def kilosample_rate(self) -> float:
        return self.rate_hz / 1000.0

    def label(self) -> str:
        return f"{self.kind}/{self.stage}@{self.rate_hz:g}Hz"

    def __str__(self) -> str:
        return self.label()

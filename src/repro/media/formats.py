"""Media formats: (codec, resolution, bitrate) triples."""

from __future__ import annotations

from dataclasses import dataclass

#: Relative decode+encode complexity per codec (work units per megapixel/s).
#: MPEG-4 costs more to encode than MPEG-2; raw costs nothing to "decode".
CODEC_COMPLEXITY: dict[str, float] = {
    "RAW": 0.2,
    "MJPEG": 0.6,
    "MPEG-2": 1.0,
    "MPEG-4": 1.6,
    "H.263": 1.3,
}


@dataclass(frozen=True, order=True)
class MediaFormat:
    """An encoded-media format: the vertices of the Figure-1 resource graph.

    Attributes
    ----------
    codec:
        Codec name; must be a key of :data:`CODEC_COMPLEXITY`.
    width, height:
        Spatial resolution in pixels.
    bitrate_kbps:
        Encoded bitrate in kilobits per second.
    fps:
        Frames per second (default 25).
    """

    codec: str
    width: int
    height: int
    bitrate_kbps: float
    fps: float = 25.0

    def __post_init__(self) -> None:
        if self.codec not in CODEC_COMPLEXITY:
            raise ValueError(
                f"unknown codec {self.codec!r}; known: "
                f"{sorted(CODEC_COMPLEXITY)}"
            )
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"invalid resolution {self.width}x{self.height}")
        if self.bitrate_kbps <= 0:
            raise ValueError(f"invalid bitrate {self.bitrate_kbps}")
        if self.fps <= 0:
            raise ValueError(f"invalid fps {self.fps}")

    @property
    def pixel_rate(self) -> float:
        """Pixels per second pushed through a codec at this format."""
        return self.width * self.height * self.fps

    @property
    def complexity(self) -> float:
        """Codec complexity coefficient."""
        return CODEC_COMPLEXITY[self.codec]

    def bytes_per_second(self) -> float:
        """Wire bandwidth consumed by a stream in this format."""
        return self.bitrate_kbps * 1000.0 / 8.0

    def label(self) -> str:
        """Compact human-readable label (used in graphs and traces)."""
        return (
            f"{self.width}x{self.height}/{self.codec}"
            f"@{self.bitrate_kbps:g}kbps"
        )

    def __str__(self) -> str:
        return self.label()

"""Media objects: the data items stored at peers (paper §3.1 item 5)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.media.formats import MediaFormat


def _content_hash(name: str, fmt: MediaFormat) -> str:
    digest = hashlib.sha256(f"{name}|{fmt.label()}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class MediaObject:
    """A stored media item, identified by name + source format.

    The metadata mirrors the paper's list: hash value, bitrate,
    resolution, codec — plus duration, from which the object's size and
    per-hop transfer volumes are derived.
    """

    name: str
    fmt: MediaFormat
    duration_s: float = 60.0
    content_hash: str = field(default="")

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"invalid duration {self.duration_s}")
        if not self.content_hash:
            object.__setattr__(
                self, "content_hash", _content_hash(self.name, self.fmt)
            )

    @property
    def size_bytes(self) -> float:
        """Encoded size at the source format."""
        return self.fmt.bytes_per_second() * self.duration_s

    def size_in(self, fmt: MediaFormat) -> float:
        """Encoded size if re-encoded into *fmt*."""
        return fmt.bytes_per_second() * self.duration_s

    def __str__(self) -> str:
        return f"{self.name}[{self.fmt.label()}]"

"""Media-streaming and transcoding workload model.

The paper's motivating application: media objects stored at peers must be
delivered to users in a requested format; *transcoding services* hosted at
peers convert between formats (codec, resolution, bitrate).  This package
models formats, media objects with metadata (paper §3.1 item 5: "hash
value, bitrate, resolution, codec"), transcoder services and their CPU
cost, and provides the exact Figure-1 example scenario.

The substitution for real transcoders (see DESIGN.md): only the *cost
structure* of transcoding matters to resource management, so a transcoder
is a (input-format, output-format, work-model) triple, where work scales
with stream duration, output pixel rate and codec complexity.
"""

from repro.media.formats import CODEC_COMPLEXITY, MediaFormat
from repro.media.objects import MediaObject
from repro.media.transcode import TranscoderSpec, TranscodingCostModel

__all__ = [
    "CODEC_COMPLEXITY",
    "MediaFormat",
    "MediaObject",
    "TranscoderSpec",
    "TranscodingCostModel",
]

"""Transcoder services and their CPU cost model.

A transcoder converts a stream from one :class:`MediaFormat` to another.
Its CPU *work* (abstract work units; a peer with processing power ``P``
executes ``P`` work units per second) for a stream of ``duration_s``
seconds is::

    work = duration_s * (c_dec * in.complexity * in.megapixel_rate
                         + c_enc * out.complexity * out.megapixel_rate
                         + c_scale * |in.pixel_rate - out.pixel_rate| / 1e6)

i.e. decode cost at the input format, encode cost at the output format,
and a resampling term for resolution changes.  The coefficients live in
:class:`TranscodingCostModel` so experiments can calibrate them; defaults
make a full 800x600 MPEG-2 -> 640x480 MPEG-4 transcode of one stream-
second cost ~1 work unit, so a peer with power 10 sustains ~10 concurrent
real-time transcodes of that kind.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.media.formats import MediaFormat

_tc_counter = itertools.count(1)


@dataclass
class TranscodingCostModel:
    """Coefficients of the transcoding work model (work units per Mpixel)."""

    c_dec: float = 0.008
    c_enc: float = 0.020
    c_scale: float = 0.004

    def work_per_second(self, src: MediaFormat, dst: MediaFormat) -> float:
        """Work units to transcode one second of stream from src to dst."""
        mp_in = src.pixel_rate / 1e6
        mp_out = dst.pixel_rate / 1e6
        return (
            self.c_dec * src.complexity * mp_in
            + self.c_enc * dst.complexity * mp_out
            + self.c_scale * abs(src.pixel_rate - dst.pixel_rate) / 1e6
        )

    def work(
        self, src: MediaFormat, dst: MediaFormat, duration_s: float
    ) -> float:
        """Total work for a stream of *duration_s* seconds."""
        if duration_s <= 0:
            raise ValueError(f"invalid duration {duration_s}")
        return self.work_per_second(src, dst) * duration_s


@dataclass(frozen=True)
class TranscoderSpec:
    """One transcoding service type: a directed format conversion.

    These are the *services* ``S_ij`` a processor can offer (paper §3.1
    item 6); instances of a spec hosted at specific peers become the
    edges of the resource graph.
    """

    src: MediaFormat
    dst: MediaFormat
    name: str = ""
    spec_id: str = field(default_factory=lambda: f"tc{next(_tc_counter)}")

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("transcoder source and destination formats equal")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.src.label()}->{self.dst.label()}"
            )

    def work(
        self, duration_s: float, model: TranscodingCostModel | None = None
    ) -> float:
        """CPU work to run this conversion on *duration_s* of stream."""
        m = model if model is not None else TranscodingCostModel()
        return m.work(self.src, self.dst, duration_s)

    def output_bytes(self, duration_s: float) -> float:
        """Bytes produced (what the next hop must receive)."""
        return self.dst.bytes_per_second() * duration_s

    def __str__(self) -> str:
        return self.name

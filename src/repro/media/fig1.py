"""The exact Figure-1 example scenario from the paper.

§4.3: *"Let us assume a source that is transmitting 800x600 MPEG-2
video, at 512 Kbps and a user that wants to view that video in 640x480
MPEG-4, at 64Kbps. Our goal is to find a path from v1 (which represents
the format of the source) to v3. In this example, we can follow any of
the {e1,e2}, {e1,e3} or {e1,e4,e5,e8}."*

The figure itself shows a five-state, eight-edge resource graph.  The
supplied text names the three candidate paths and the endpoints; the
intermediate formats are not printed in the text, so we pick plausible
ones (documented below) that reproduce the *topology* exactly: under the
Fig-3 BFS, precisely the three quoted paths are found, with ``e2``/``e3``
parallel edges and ``e6``/``e7`` present but not on any candidate path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from repro.graphs.resource_graph import ResourceGraph
from repro.media.formats import MediaFormat
from repro.media.objects import MediaObject
from repro.media.transcode import TranscodingCostModel

#: v1 — the source format quoted in the paper.
V1 = MediaFormat("MPEG-2", 800, 600, 512.0)
#: v2 — intermediate: source codec down-scaled to the target resolution.
V2 = MediaFormat("MPEG-2", 640, 480, 256.0)
#: v3 — the requested format quoted in the paper.
V3 = MediaFormat("MPEG-4", 640, 480, 64.0)
#: v4 — low-resolution detour state.
V4 = MediaFormat("MPEG-2", 320, 240, 128.0)
#: v5 — low-resolution MPEG-4 state.
V5 = MediaFormat("MPEG-4", 320, 240, 96.0)

#: Edge topology of Figure 1(A): edge id -> (src state, dst state, peer).
FIG1_EDGES: Dict[str, tuple[MediaFormat, MediaFormat, str]] = {
    "e1": (V1, V2, "P1"),
    "e2": (V2, V3, "P2"),
    "e3": (V2, V3, "P3"),
    "e4": (V2, V4, "P2"),
    "e5": (V4, V5, "P4"),
    "e6": (V3, V4, "P3"),
    "e7": (V4, V2, "P4"),
    "e8": (V5, V3, "P1"),
}

#: The candidate paths quoted in §4.3, in the order the text lists them.
FIG1_CANDIDATE_PATHS = [
    ["e1", "e2"],
    ["e1", "e3"],
    ["e1", "e4", "e5", "e8"],
]


@dataclass
class Fig1Scenario:
    """The built example: graph, endpoints, the streamed object."""

    graph: ResourceGraph
    v_init: Hashable
    v_sol: Hashable
    source_object: MediaObject
    peers: list[str]


def build_fig1_graph(
    duration_s: float = 60.0,
    cost_model: TranscodingCostModel | None = None,
) -> Fig1Scenario:
    """Construct the Figure-1 resource graph.

    Parameters
    ----------
    duration_s:
        Stream duration; edge work and output bytes scale with it.
    cost_model:
        Transcoding cost coefficients (defaults used if omitted).
    """
    model = cost_model if cost_model is not None else TranscodingCostModel()
    graph = ResourceGraph()
    for state in (V1, V2, V3, V4, V5):
        graph.add_state(state)
    for edge_id, (src, dst, peer) in FIG1_EDGES.items():
        graph.add_service(
            src,
            dst,
            service_id=f"T-{edge_id}",
            peer_id=peer,
            work=model.work(src, dst, duration_s),
            out_bytes=dst.bytes_per_second() * duration_s,
            edge_id=edge_id,
        )
    source = MediaObject("movie", V1, duration_s=duration_s)
    return Fig1Scenario(
        graph=graph,
        v_init=V1,
        v_sol=V3,
        source_object=source,
        peers=["P1", "P2", "P3", "P4"],
    )

"""Analytical models used to sanity-check the simulator.

Closed-form queueing results (M/M/1, M/D/1) against which the
processor + Poisson-arrival pipeline is validated in
``tests/test_analysis.py`` — if the simulated mean response time of a
single FIFO peer under Poisson load diverges from M/D/1, the substrate
is wrong and every experiment above it is suspect.
"""

from repro.analysis.queueing import (
    md1_mean_response,
    md1_mean_wait,
    mm1_mean_response,
    mm1_mean_wait,
    utilization,
)

__all__ = [
    "md1_mean_response",
    "md1_mean_wait",
    "mm1_mean_response",
    "mm1_mean_wait",
    "utilization",
]

"""Single-server queueing formulas (Poisson arrivals).

Notation: arrival rate ``lam`` (jobs/s), mean service time ``s``
(seconds/job), utilization ``rho = lam * s``; all formulas require
``rho < 1`` (a stable queue).
"""

from __future__ import annotations


def _check(lam: float, s: float) -> float:
    if lam <= 0:
        raise ValueError(f"arrival rate must be positive, got {lam}")
    if s <= 0:
        raise ValueError(f"service time must be positive, got {s}")
    rho = lam * s
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho


def utilization(lam: float, s: float) -> float:
    """Offered utilization ``rho = lam * s``."""
    if lam < 0 or s < 0:
        raise ValueError("negative inputs")
    return lam * s


def mm1_mean_wait(lam: float, s: float) -> float:
    """M/M/1 mean time in queue (excluding service)."""
    rho = _check(lam, s)
    return rho * s / (1.0 - rho)


def mm1_mean_response(lam: float, s: float) -> float:
    """M/M/1 mean sojourn time (queue + service): ``s / (1 - rho)``."""
    rho = _check(lam, s)
    return s / (1.0 - rho)


def md1_mean_wait(lam: float, s: float) -> float:
    """M/D/1 mean time in queue: ``rho s / (2 (1 - rho))``.

    Deterministic service — exactly the case of identical transcoding
    jobs on one peer, which is why the validation tests use it.
    """
    rho = _check(lam, s)
    return rho * s / (2.0 * (1.0 - rho))


def md1_mean_response(lam: float, s: float) -> float:
    """M/D/1 mean sojourn time (queue + service)."""
    return md1_mean_wait(lam, s) + s

"""Candidate-selection rules implementing the baseline policies."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.allocation import (
    Allocator,
    Candidate,
    Selector,
    select_max_fairness,
)
from repro.core.estimate import CompletionTimeEstimator
from repro.sim.rng import fallback_rng


def select_first(candidates: List[Candidate]) -> Candidate:
    """First feasible path in search order — fairness-blind BFS."""
    return candidates[0]


class RandomSelector:
    """Uniform choice among feasible candidates."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        # Fallback: the ambient scenario seed when installed (see
        # repro.sim.rng), else OS entropy; build_scenario plumbs an
        # explicit seed-derived rng.
        self.rng = rng if rng is not None else fallback_rng("allocator")

    def __call__(self, candidates: List[Candidate]) -> Candidate:
        return candidates[int(self.rng.integers(len(candidates)))]


class LeastLoadedSelector:
    """Greedy: minimize the max post-assignment utilization.

    The "centralized greedy" reference the paper cites ([17], §4.2) —
    good at avoiding hot spots but blind to distribution shape.
    """

    def __call__(self, candidates: List[Candidate]) -> Candidate:
        return min(candidates, key=lambda c: (c.max_post_util, c.est_time))


class RoundRobinSelector:
    """Rotate load across peers: pick the candidate whose peers have
    been used least recently/often by this selector (the classic
    middleware load-balancing strategy of the related work, [16])."""

    def __init__(self) -> None:
        self._use_counts: Dict[str, int] = {}

    def __call__(self, candidates: List[Candidate]) -> Candidate:
        def burden(cand: Candidate) -> tuple[int, float]:
            return (
                sum(self._use_counts.get(p, 0) for p in cand.peers()),
                cand.est_time,
            )

        winner = min(candidates, key=burden)
        for peer in winner.peers():
            self._use_counts[peer] = self._use_counts.get(peer, 0) + 1
        return winner


_NAMES = (
    "paper", "fairness", "first", "random", "least_loaded", "round_robin"
)


def make_selector(
    name: str, rng: Optional[np.random.Generator] = None
) -> Selector:
    """Build a selector by table name (``paper`` aliases ``fairness``)."""
    if name in ("fairness", "paper"):
        return select_max_fairness
    if name == "first":
        return select_first
    if name == "random":
        return RandomSelector(rng)
    if name == "least_loaded":
        return LeastLoadedSelector()
    if name == "round_robin":
        return RoundRobinSelector()
    raise ValueError(f"unknown selector {name!r}; known: {_NAMES}")


def make_allocator(
    policy: str = "fairness",
    rng: Optional[np.random.Generator] = None,
    visited_policy: str = "paper",
    estimator: Optional[CompletionTimeEstimator] = None,
    max_expansions: int = 100_000,
) -> Allocator:
    """An :class:`Allocator` configured for one named policy."""
    return Allocator(
        estimator=estimator or CompletionTimeEstimator(),
        visited_policy=visited_policy,
        selector=make_selector(policy, rng),
        max_expansions=max_expansions,
    )

"""Baseline allocation policies for the E1/E2/E10 comparisons.

All baselines share the paper's search and feasibility machinery
(:class:`repro.core.allocation.Allocator`) and differ only in the
*selection rule* among feasible candidates:

========================  ==================================================
``fairness`` (the paper)  maximize the post-assignment Jain fairness index
``first``                 first feasible path in BFS order (fairness-blind)
``random``                uniform over feasible candidates
``least_loaded``          greedy: minimize the maximum post-assignment
                          utilization among touched peers
``round_robin``           rotate assignments across peers (classic ORB load
                          balancing strategy, §5 related work)
========================  ==================================================
"""

from repro.baselines.selectors import (
    LeastLoadedSelector,
    RandomSelector,
    RoundRobinSelector,
    make_allocator,
    make_selector,
    select_first,
)

__all__ = [
    "LeastLoadedSelector",
    "RandomSelector",
    "RoundRobinSelector",
    "make_allocator",
    "make_selector",
    "select_first",
]

"""Run-level metrics: task outcomes, fairness series, overheads."""

from repro.metrics.collector import MetricsCollector, RunSummary
from repro.metrics.timeseries import TimeSeries

__all__ = ["MetricsCollector", "RunSummary", "TimeSeries"]

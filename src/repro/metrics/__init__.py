"""Deprecated alias for :mod:`repro.results`.

This package used to hold the simulation run-result collector, which
collided with :mod:`repro.telemetry.metrics` (the Prometheus-style
runtime metrics registry).  It now lives at :mod:`repro.results`;
importing from ``repro.metrics`` keeps working but warns.
"""

import sys
import warnings

from repro.results import MetricsCollector, RunSummary, TimeSeries
from repro.results import collector, timeseries

# Legacy submodule paths (repro.metrics.collector, .timeseries) resolve
# to the relocated modules.
sys.modules[__name__ + ".collector"] = collector
sys.modules[__name__ + ".timeseries"] = timeseries

__all__ = ["MetricsCollector", "RunSummary", "TimeSeries"]

# Warn last: under ``-W error::DeprecationWarning`` the warning raises,
# and everything above must already be registered so a caller that
# catches the error (or a later retry of the import) sees a consistent
# module, not a half-initialized one.
warnings.warn(
    "repro.metrics has been renamed to repro.results; "
    "update imports (repro.metrics will be removed in a future release)",
    DeprecationWarning,
    stacklevel=2,
)

"""The ``repro-bench`` performance harness.

:mod:`repro.benchmarking.harness`
    measurement machinery (warmup/repeat, phase timers, JSON schema,
    regression gate).
:mod:`repro.benchmarking.scenarios`
    the pinned macro scenarios and micro benchmarks.
:mod:`repro.benchmarking.cli`
    the ``repro-bench`` entry point.
"""

from repro.benchmarking.harness import (
    SCHEMA_VERSION,
    BenchRecord,
    PhaseTimer,
    Regression,
    find_regressions,
    load_report,
    report_document,
    run_benchmark,
    write_report,
)
from repro.benchmarking.scenarios import BENCHES, BenchSpec, select

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "PhaseTimer",
    "Regression",
    "find_regressions",
    "load_report",
    "report_document",
    "run_benchmark",
    "write_report",
    "BENCHES",
    "BenchSpec",
    "select",
]

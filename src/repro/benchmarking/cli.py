"""``repro-bench`` — the pinned performance suite.

Runs the registered macro scenarios and micro benchmarks with
warmup/repeat discipline, prints a throughput table, and writes a
schema-versioned JSON report (``BENCH_4.json`` by convention at the
repo root).  With ``--baseline`` it additionally gates on regression:
any benchmark whose ``events_per_sec`` fell more than ``--gate-pct``
percent below the baseline fails the run (exit code 1) — this is what
CI's bench-smoke job enforces.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.benchmarking import harness
from repro.benchmarking.scenarios import BENCHES, select


def _format_table(records: List[harness.BenchRecord]) -> str:
    headers = ["benchmark", "events", "best_s", "mean_s", "events/s",
               "peak_rss_mb"]
    rows = [
        [
            r.name,
            f"{r.events:,}",
            f"{r.wall_s['min']:.3f}",
            f"{r.wall_s['mean']:.3f}",
            f"{r.events_per_sec:,.0f}",
            f"{r.peak_rss_kb / 1024:.0f}",
        ]
        for r in records
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _print_hot_paths(
    records: List[harness.BenchRecord], top_n: int = 5
) -> None:
    """The per-benchmark hot-path report (``--profile``)."""
    for r in records:
        prof = r.profile
        if not prof:
            continue
        print(
            f"\n{r.name}: {prof['samples']} samples / "
            f"{prof['unique_stacks']} stacks; profiler overhead "
            f"{prof['budget']['overhead_cumulative']:.2%}"
        )
        for entry in prof.get("top", [])[:top_n]:
            leaf = entry["stack"].rsplit(";", 1)[-1]
            print(f"  {entry['share']:6.1%}  {leaf}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: reduced durations, heavy rungs skipped",
    )
    parser.add_argument(
        "--suite", default="perf", choices=("perf", "adversarial"),
        help="'perf' (default) runs the pinned performance suite; "
        "'adversarial' runs the stress-scenario configs under "
        "--scenario-dir through the scenario DSL",
    )
    parser.add_argument(
        "--scenario-dir", default=None, metavar="DIR",
        help="scenario configs for --suite adversarial "
        "(default benchmarks/scenarios)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="list registered benchmarks and exit",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated benchmark names to run (default: all)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="unrecorded runs per benchmark (default 1; 0 in --quick)",
    )
    parser.add_argument(
        "--repeat", type=int, default=None,
        help="recorded runs per benchmark (default 3; 2 in --quick)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default BENCH_4.json; '-' to skip)",
    )
    parser.add_argument(
        "--bench-id", default="BENCH_4",
        help="identifier stamped into the report (default BENCH_4)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against this report and gate on regression",
    )
    parser.add_argument(
        "--gate-pct", type=float, default=25.0,
        help="max tolerated events/sec drop vs baseline, percent "
             "(default 25)",
    )
    parser.add_argument(
        "--sample", action="store_true",
        help="attach sampled health series to macro benchmark reports; "
        "the sampler adds kernel events, so sampled runs cannot be "
        "gated against an unsampled --baseline",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each benchmark under the wall-clock sampling profiler "
        "and attach a per-benchmark hot-path report; the profiler "
        "thread perturbs timing, so profiled runs cannot be gated "
        "against --baseline",
    )
    parser.add_argument(
        "--profile-period", type=float, default=None, metavar="SECONDS",
        help="override the profiler's sampling period (default 0.05 s; "
        "quick rungs finish fast, so smoke runs need a faster clock "
        "to capture stacks); requires --profile",
    )
    parser.add_argument(
        "--profile-folded", default=None, metavar="PATH",
        help="write this run's merged .folded profile (all benchmarks' "
        "best-run stacks summed); requires --profile",
    )
    parser.add_argument(
        "--profile-baseline", default=None, metavar="PATH",
        help="diff this run's merged profile against a baseline .folded "
        "and print the top regressed/improved stacks; requires --profile",
    )
    args = parser.parse_args(argv)
    if args.profile_period is not None and not args.profile:
        parser.error("--profile-period needs --profile")
    if (args.profile_folded or args.profile_baseline) and not args.profile:
        parser.error(
            "--profile-folded/--profile-baseline need --profile samples"
        )
    if args.sample and args.baseline:
        parser.error(
            "--sample changes event counts; gate against a sampled "
            "baseline or drop --baseline"
        )
    if args.profile and args.baseline:
        parser.error(
            "--profile perturbs timing; measure regressions without it"
        )

    adversarial = args.suite == "adversarial"
    from repro.scenarios import suite as scenario_suite
    scenario_dir = args.scenario_dir or scenario_suite.DEFAULT_SCENARIO_DIR

    if args.list_benches:
        if adversarial:
            for path in scenario_suite.discover(scenario_dir):
                print(path)
            return 0
        for spec in BENCHES:
            quick = "quick+full" if spec.quick else "full only"
            print(f"{spec.name:22s} [{spec.family}] ({quick}) "
                  f"{spec.params}")
        return 0

    only = (
        [n.strip() for n in args.only.split(",") if n.strip()]
        if args.only else None
    )
    warmup = args.warmup if args.warmup is not None else (
        0 if args.quick else 1
    )
    repeat = args.repeat if args.repeat is not None else (
        2 if args.quick else 3
    )

    if adversarial:
        # Scenario runs are deterministic in the simulated world, so
        # one recorded repeat is enough unless timing is the question.
        if args.warmup is None:
            warmup = 0
        if args.repeat is None:
            repeat = 1
        try:
            records = scenario_suite.run_suite(
                scenario_dir,
                only=only,
                quick=args.quick,
                warmup=warmup,
                repeat=repeat,
                profile=args.profile,
                progress=lambda name: print(
                    f"running scenario {name} "
                    f"(warmup={warmup}, repeat={repeat}) ...", flush=True
                ),
            )
        except (FileNotFoundError, KeyError) as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        try:
            specs = select(only=only, quick=args.quick)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        records = []
        for spec in specs:
            params = spec.effective_params(quick=args.quick)
            print(f"running {spec.name} {params} "
                  f"(warmup={warmup}, repeat={repeat}) ...", flush=True)
            record = harness.run_benchmark(
                spec.name, spec.build(quick=args.quick, sample=args.sample),
                params=params, warmup=warmup, repeat=repeat,
                profile=args.profile,
                profile_period=args.profile_period,
            )
            records.append(record)

    print()
    print(_format_table(records))
    if args.profile:
        _print_hot_paths(records)

    if args.profile_folded or args.profile_baseline:
        from repro.profiling.folded import (
            diff_folded,
            format_diff,
            merge_folded,
            parse_folded,
            read_folded,
            write_folded,
        )

        merged = merge_folded(
            parse_folded(r.folded) for r in records
            if getattr(r, "folded", None)
        )
        if args.profile_folded:
            write_folded(args.profile_folded, merged)
            print(f"\nwrote {args.profile_folded}")
        if args.profile_baseline:
            try:
                base = read_folded(args.profile_baseline)
            except OSError as exc:
                print(
                    f"error: cannot read {args.profile_baseline}: {exc}",
                    file=sys.stderr,
                )
                return 2
            print()
            print(format_diff(diff_folded(base, merged)))

    out_path = args.out
    if out_path is None:
        out_path = "BENCH_SCENARIOS.json" if adversarial else "BENCH_4.json"
    if out_path != "-":
        mode = "quick" if args.quick else "full"
        doc = harness.report_document(records, mode=mode,
                                      bench_id=args.bench_id)
        harness.write_report(out_path, doc)
        print(f"\nwrote {out_path}")

    if args.baseline:
        try:
            baseline = harness.load_report(args.baseline)
        except FileNotFoundError:
            print(f"error: baseline file not found: {args.baseline}",
                  file=sys.stderr)
            return 2
        regressions = harness.find_regressions(
            baseline, records, gate_pct=args.gate_pct
        )
        compared = sum(
            1 for r in records
            if any(b["name"] == r.name for b in baseline.get("results", []))
        )
        print(f"\nregression gate: {compared} benchmark(s) compared "
              f"against {args.baseline} (gate {args.gate_pct:.0f}%)")
        if regressions:
            for reg in regressions:
                print(
                    f"  REGRESSION {reg.name}: "
                    f"{reg.baseline_eps:,.0f} -> {reg.current_eps:,.0f} "
                    f"events/s ({reg.slowdown_pct:.1f}% slower)",
                    file=sys.stderr,
                )
            return 1
        print("  no regressions beyond the gate")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

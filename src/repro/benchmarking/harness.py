"""Measurement machinery for ``repro-bench``.

A benchmark is a zero-argument callable returning a counters dict::

    {"events": <work units processed>,
     "phases": {"build": 1.2, "run": 8.7},      # seconds, optional
     "metrics": {...}}                           # free-form, optional

The harness runs it ``warmup`` unrecorded times, then ``repeat``
recorded times, and folds the wall-clock samples into a
:class:`BenchRecord`.  Throughput (``events_per_sec``) uses the *best*
(minimum) wall time — the standard convention for noisy machines: the
fastest run is the one least disturbed by the OS.

Peak RSS comes from ``getrusage`` and is a high-water mark for the
whole process, so within one CLI invocation it can only grow from
benchmark to benchmark; compare it across invocations, not across rows.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Bumped whenever the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


def peak_rss_kb() -> int:
    """The process's peak resident set size, in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        usage //= 1024
    return int(usage)


class PhaseTimer:
    """Accumulates named wall-clock phases inside one benchmark run."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    def phase(self, name: str) -> "_Phase":
        return _Phase(self, name)


class _Phase:
    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.perf_counter() - self._t0
        phases = self._timer.phases
        phases[self._name] = phases.get(self._name, 0.0) + elapsed


@dataclass
class BenchRecord:
    """One benchmark's aggregated measurement."""

    name: str
    params: Dict[str, Any]
    warmup: int
    repeat: int
    wall_s: Dict[str, float]
    events: int
    events_per_sec: float
    peak_rss_kb: int
    phases: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Hot-path report from the best recorded run (``--profile`` only).
    profile: Optional[Dict[str, Any]] = None
    #: The best run's raw folded stacks (``--profile`` only).  Kept off
    #: the JSON report — it is bulky and line-oriented; the CLI writes
    #: it to a ``.folded`` artifact via ``--profile-folded`` instead.
    folded: Optional[str] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "params": self.params,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "peak_rss_kb": self.peak_rss_kb,
            "phases": self.phases,
            "metrics": self.metrics,
        }
        if self.profile is not None:
            out["profile"] = self.profile
        return out


def run_benchmark(
    name: str,
    fn: Callable[[], Dict[str, Any]],
    params: Optional[Dict[str, Any]] = None,
    warmup: int = 1,
    repeat: int = 3,
    profile: bool = False,
    profile_period: Optional[float] = None,
) -> BenchRecord:
    """Measure *fn* with warmup/repeat discipline.

    With ``profile=True``, each recorded run executes under the
    wall-clock sampling profiler and the best run's hot-path report
    lands in :attr:`BenchRecord.profile`.  The profiler thread adds a
    little overhead, so profiled runs should not be gated against an
    unprofiled baseline (the CLI refuses).  *profile_period* overrides
    the sampling period — quick rungs finish in well under a second,
    so capturing stacks from them needs a faster clock than the 20 Hz
    default.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(warmup):
        fn()
    walls: List[float] = []
    best: Optional[Dict[str, Any]] = None
    best_profile: Optional[Dict[str, Any]] = None
    best_folded: Optional[str] = None
    for _ in range(repeat):
        sess = None
        if profile:
            from repro.profiling import profile_wall

            kwargs = {}
            if profile_period is not None:
                kwargs["period"] = profile_period
            sess = profile_wall(**kwargs)
        t0 = time.perf_counter()
        try:
            out = fn()
        finally:
            if sess is not None:
                sess.stop()
        wall = time.perf_counter() - t0
        walls.append(wall)
        if wall == min(walls):
            best = out
            if sess is not None:
                best_profile = sess.record(top_n=10)
                best_folded = (
                    sess.profiler.agg.to_folded()
                    if sess.profiler.agg.n_samples else None
                )
    assert best is not None
    events = int(best.get("events", 0))
    best_wall = min(walls)
    return BenchRecord(
        name=name,
        params=dict(params or {}),
        warmup=warmup,
        repeat=repeat,
        wall_s={
            "mean": statistics.fmean(walls),
            "min": best_wall,
            "max": max(walls),
            "stdev": statistics.stdev(walls) if len(walls) > 1 else 0.0,
        },
        events=events,
        events_per_sec=(events / best_wall) if best_wall > 0 else 0.0,
        peak_rss_kb=peak_rss_kb(),
        phases=dict(best.get("phases", {})),
        metrics=dict(best.get("metrics", {})),
        profile=best_profile,
        folded=best_folded,
    )


def report_document(
    records: List[BenchRecord], mode: str, bench_id: str
) -> Dict[str, Any]:
    """The schema-versioned JSON document a bench run emits."""
    return {
        "schema_version": SCHEMA_VERSION,
        "bench_id": bench_id,
        "created_unix": int(time.time()),
        "mode": mode,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "results": [r.as_dict() for r in records],
    }


def write_report(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=False)
        fp.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fp:
        doc = json.load(fp)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema_version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return doc


@dataclass
class Regression:
    """One benchmark that got slower than the gate allows."""

    name: str
    baseline_eps: float
    current_eps: float

    @property
    def slowdown_pct(self) -> float:
        if self.baseline_eps <= 0:
            return 0.0
        return (1.0 - self.current_eps / self.baseline_eps) * 100.0


def find_regressions(
    baseline_doc: Dict[str, Any],
    current: List[BenchRecord],
    gate_pct: float,
) -> List[Regression]:
    """Benchmarks in *current* slower than baseline by > *gate_pct* %.

    Only names present in both runs are compared (quick runs are a
    subset of full runs), and only via ``events_per_sec`` — wall time
    alone would punish configs that process more work.
    """
    base_eps = {
        r["name"]: float(r.get("events_per_sec", 0.0))
        for r in baseline_doc.get("results", [])
    }
    out: List[Regression] = []
    for rec in current:
        base = base_eps.get(rec.name)
        if base is None or base <= 0 or rec.events_per_sec <= 0:
            continue
        reg = Regression(rec.name, base, rec.events_per_sec)
        if reg.slowdown_pct > gate_pct:
            out.append(reg)
    return out

"""The pinned benchmark suite behind ``repro-bench``.

Two families:

*macro*
    Whole-system scenarios built through :func:`build_scenario` (the
    same entry point the experiments use): the e4-style scalability
    ladder at 250/1000/2500 peers, a churning overlay, and a pure
    gossip-convergence run.  The work unit is **kernel events
    processed** (``Environment.n_processed``) — stable across
    refactors as long as the simulated trajectory is unchanged, which
    is exactly the invariant the optimization passes preserve.
*micro*
    Isolated hot paths (event kernel, network send, mailbox traffic)
    for attributing a macro-level regression to a subsystem.

Every macro/micro benchmark is deterministic: fixed seeds, no
wall-clock dependence inside the simulated world.  The *live* family
(the sharded multi-process soak) is the exception — wall-clock by
nature, excluded from ``--quick`` and from events/sec regression
gating; it contributes an acceptance sweep, not a perf number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.benchmarking.harness import PhaseTimer


@dataclass
class BenchSpec:
    """One registered benchmark: how to build it and how to scale it."""

    name: str
    family: str  # "macro" | "micro"
    make: Callable[..., Callable[[], Dict[str, Any]]]
    params: Dict[str, Any] = field(default_factory=dict)
    #: Parameter overrides applied in ``--quick`` mode (CI smoke).
    quick_params: Dict[str, Any] = field(default_factory=dict)
    #: Excluded from ``--quick`` runs entirely when False.
    quick: bool = True
    #: Accepts ``sample=True`` to attach health series to its metrics.
    supports_sample: bool = False

    def build(
        self, quick: bool = False, sample: bool = False
    ) -> Callable[[], Dict[str, Any]]:
        params = dict(self.params)
        if quick:
            params.update(self.quick_params)
        if sample and self.supports_sample:
            params["sample"] = True
        return self.make(**params)

    def effective_params(self, quick: bool = False) -> Dict[str, Any]:
        params = dict(self.params)
        if quick:
            params.update(self.quick_params)
        return params


# -- live (wall-clock, multi-process) ----------------------------------------

def _live_soak(
    peers: int, shards: int, duration: float, rate: float,
    kill: bool = True, drain: bool = True, seed: int = 7,
) -> Callable:
    """The sharded runtime soak (``repro-live-soak``) as a ladder rung.

    Wall-clock and multi-process, so excluded from ``--quick`` and
    never regression-gated on events/sec — its value is the pass/fail
    acceptance sweep (respawn, convergence, task conservation) plus
    the task-throughput metrics it reports.
    """

    def fn() -> Dict[str, Any]:
        import asyncio

        from repro.runtime.soak import SoakConfig, run_soak

        cfg = SoakConfig(
            peers=peers, shards=shards, duration=duration,
            task_rate=rate, kill=kill, drain=drain, seed=seed,
        )
        result = asyncio.run(run_soak(cfg))
        if not result["ok"]:
            raise AssertionError(f"live soak failed: {result}")
        counts = result.get("tasks", {})
        return {
            "events": counts.get("seen", 0),
            "metrics": {
                "tasks_terminal": counts.get("terminal", 0),
                "tasks_completed": counts.get("completed", 0),
                "tasks_open": counts.get("open", 0),
                "submit_failures": counts.get("submit_failures", 0),
                "restarts": sum(result.get("restarts", {}).values()),
                "converged": int(result["converged"]),
            },
        }

    return fn


# -- macro scenarios ---------------------------------------------------------

def _sampled_run(scenario, duration: float, timer: PhaseTimer):
    """Run *scenario* with a sim-time health sampler attached.

    Opt-in only (``repro-bench --sample``): the sampler Process adds
    kernel events, so sampled runs are not comparable with unsampled
    baselines — the CLI refuses to gate them.
    """
    from repro import telemetry
    from repro.telemetry.timeseries import HealthSampler, overlay_probes

    with telemetry.session(
        telemetry.Telemetry.sim(scenario.env)
    ) as tel:
        sampler = HealthSampler(tel, period=1.0)
        for probe in overlay_probes(
            scenario.overlay, scenario.network, per_peer=False
        ):
            sampler.add_probe(probe)
        sampler.attach_sim(scenario.env)
        with timer.phase("run"):
            scenario.env.run(until=scenario.env.now + duration)
    return sampler.records()


def _scalability(
    n_peers: int, duration: float, seed: int, sample: bool = False
) -> Callable:
    """e4-style ladder rung: constant per-peer load, bounded domains."""

    def fn() -> Dict[str, Any]:
        from repro.core.manager import RMConfig
        from repro.workloads import (
            PopulationConfig,
            ScenarioConfig,
            WorkloadConfig,
            build_scenario,
        )

        timer = PhaseTimer()
        cfg = ScenarioConfig(
            seed=seed,
            population=PopulationConfig(
                n_peers=n_peers,
                n_objects=max(6, n_peers // 2),
                replication=3,
            ),
            workload=WorkloadConfig(rate=0.03 * n_peers),
            rm=RMConfig(max_peers=16),
        )
        with timer.phase("build"):
            scenario = build_scenario(cfg)
        metrics: Dict[str, Any] = {}
        if sample:
            metrics["series"] = _sampled_run(scenario, duration, timer)
        else:
            with timer.phase("run"):
                scenario.env.run(until=scenario.env.now + duration)
        metrics.update({
            "domains": scenario.overlay.n_domains,
            "peers_joined": scenario.overlay.n_peers,
            "messages": scenario.network.stats.sent,
            "sim_duration": duration,
        })
        return {
            "events": scenario.env.n_processed,
            "phases": timer.phases,
            "metrics": metrics,
        }

    return fn


def _churn(
    n_peers: int, duration: float, seed: int, sample: bool = False
) -> Callable:
    """A churning overlay: joins/leaves/failovers dominate."""

    def fn() -> Dict[str, Any]:
        from repro.core.manager import RMConfig
        from repro.overlay import ChurnConfig
        from repro.workloads import (
            PopulationConfig,
            ScenarioConfig,
            WorkloadConfig,
            build_scenario,
        )

        timer = PhaseTimer()
        cfg = ScenarioConfig(
            seed=seed,
            population=PopulationConfig(
                n_peers=n_peers,
                n_objects=max(6, n_peers // 2),
                replication=3,
            ),
            workload=WorkloadConfig(rate=0.02 * n_peers),
            rm=RMConfig(max_peers=16),
            churn=ChurnConfig(mean_lifetime=40.0, mean_offtime=10.0),
        )
        with timer.phase("build"):
            scenario = build_scenario(cfg)
        metrics: Dict[str, Any] = {}
        if sample:
            metrics["series"] = _sampled_run(scenario, duration, timer)
        else:
            with timer.phase("run"):
                scenario.env.run(until=scenario.env.now + duration)
        metrics.update({
            "departures": scenario.churn.departures,
            "rejoins": scenario.churn.rejoins,
            "messages": scenario.network.stats.sent,
        })
        return {
            "events": scenario.env.n_processed,
            "phases": timer.phases,
            "metrics": metrics,
        }

    return fn


def _gossip_convergence(
    n_domains: int, peers_per_domain: int, duration: float, seed: int
) -> Callable:
    """Anti-entropy across many single-RM domains, no workload."""

    def fn() -> Dict[str, Any]:
        from repro.core.manager import RMConfig
        from repro.gossip import GossipConfig
        from repro.net import ConstantLatency, Network
        from repro.overlay import OverlayNetwork, PeerSpec
        from repro.sim import Environment, RandomStreams

        timer = PhaseTimer()
        with timer.phase("build"):
            env = Environment()
            net = Network(env, ConstantLatency(0.005), bandwidth=1e7)
            overlay = OverlayNetwork(
                env, net,
                rm_config=RMConfig(max_peers=peers_per_domain),
                gossip_config=GossipConfig(period=2.0, fanout=3),
                enable_backups=False,
                streams=RandomStreams(seed),
            )
            for i in range(n_domains * peers_per_domain):
                overlay.join(PeerSpec(
                    peer_id=f"p{i}", power=10.0, bandwidth=2e6, uptime=0.9,
                ))
        with timer.phase("run"):
            env.run(until=duration)
        agents = [d.gossip for d in overlay.domains.values()]
        converged = (
            agents[0].converged_with(agents[1:]) if len(agents) > 1 else True
        )
        return {
            "events": env.n_processed,
            "phases": timer.phases,
            "metrics": {
                "domains": overlay.n_domains,
                "converged": bool(converged),
                "messages": net.stats.sent,
            },
        }

    return fn


# -- micro benchmarks --------------------------------------------------------

def _micro_kernel(n_timeouts: int) -> Callable:
    """Raw event-kernel throughput: one process draining timeouts."""

    def fn() -> Dict[str, Any]:
        from repro.sim import Environment

        env = Environment()

        def ticker():
            for _ in range(n_timeouts):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        return {"events": env.n_processed, "metrics": {}}

    return fn


def _micro_net_send(n_messages: int) -> Callable:
    """Fabric send/deliver path between two nodes (FIFO, stats, mailbox)."""

    def fn() -> Dict[str, Any]:
        from repro.net import ConstantLatency, NetNode, Network
        from repro.sim import Environment

        env = Environment()
        net = Network(env, ConstantLatency(0.001), bandwidth=1e9)
        a = NetNode(env, net, "a")
        b = NetNode(env, net, "b")
        got = []
        b.on("m", lambda msg: got.append(1))
        for i in range(n_messages):
            a.send("m", "b", {"i": i})
        env.run()
        assert len(got) == n_messages
        return {
            "events": env.n_processed,
            "metrics": {"delivered": net.stats.delivered},
        }

    return fn


def _micro_mailbox(n_items: int) -> Callable:
    """Store put/get ping-pong (the mailbox primitive under every node)."""

    def fn() -> Dict[str, Any]:
        from repro.sim import Environment
        from repro.sim.resources import Store

        env = Environment()
        store = Store(env)
        taken = []

        def producer():
            for i in range(n_items):
                store.put(i)
                yield env.timeout(0.0)

        def consumer():
            for _ in range(n_items):
                item = yield store.get()
                taken.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert len(taken) == n_items
        return {"events": env.n_processed, "metrics": {}}

    return fn


#: The registry, in execution order.
BENCHES: List[BenchSpec] = [
    BenchSpec(
        name="scalability_250", family="macro", make=_scalability,
        params={"n_peers": 250, "duration": 40.0, "seed": 7},
        quick_params={"duration": 10.0},
        supports_sample=True,
    ),
    BenchSpec(
        name="scalability_1000", family="macro", make=_scalability,
        params={"n_peers": 1000, "duration": 30.0, "seed": 7},
        quick_params={"duration": 6.0},
        supports_sample=True,
    ),
    BenchSpec(
        name="scalability_2500", family="macro", make=_scalability,
        params={"n_peers": 2500, "duration": 8.0, "seed": 7},
        quick=False,
        supports_sample=True,
    ),
    BenchSpec(
        name="churn_300", family="macro", make=_churn,
        params={"n_peers": 300, "duration": 60.0, "seed": 11},
        quick_params={"duration": 15.0},
        supports_sample=True,
    ),
    BenchSpec(
        name="gossip_convergence", family="macro",
        make=_gossip_convergence,
        params={"n_domains": 24, "peers_per_domain": 2,
                "duration": 120.0, "seed": 13},
        quick_params={"n_domains": 10, "duration": 40.0},
    ),
    BenchSpec(
        name="live_soak_200", family="live", make=_live_soak,
        params={"peers": 200, "shards": 4, "duration": 20.0,
                "rate": 4.0, "seed": 7},
        quick=False,
    ),
    BenchSpec(
        name="micro_event_kernel", family="micro", make=_micro_kernel,
        params={"n_timeouts": 200_000},
        quick_params={"n_timeouts": 50_000},
    ),
    BenchSpec(
        name="micro_net_send", family="micro", make=_micro_net_send,
        params={"n_messages": 30_000},
        quick_params={"n_messages": 8_000},
    ),
    BenchSpec(
        name="micro_mailbox", family="micro", make=_micro_mailbox,
        params={"n_items": 50_000},
        quick_params={"n_items": 15_000},
    ),
]


def select(
    only: Optional[List[str]] = None, quick: bool = False
) -> List[BenchSpec]:
    """The benchmarks a run should execute, in registry order."""
    specs = [s for s in BENCHES if s.quick or not quick]
    if only:
        known = {s.name for s in BENCHES}
        unknown = [n for n in only if n not in known]
        if unknown:
            raise KeyError(
                f"unknown benchmark(s): {', '.join(unknown)} "
                f"(see --list)"
            )
        wanted = set(only)
        specs = [s for s in BENCHES if s.name in wanted]
    return specs

"""Inter-domain summaries (paper §3.1: Bloom filters over objects/services).

Each Resource Manager advertises a :class:`DomainSummary` — Bloom
filters of the data objects and services available in its domain plus a
coarse load figure — which other RMs use to pick redirection targets
without any global state (§4.5).
"""

from repro.summaries.bloom import BloomFilter
from repro.summaries.domain_summary import DomainSummary

__all__ = ["BloomFilter", "DomainSummary"]

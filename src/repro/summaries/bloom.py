"""A classic Bloom filter over string items.

Deterministic across runs (hashes derive from SHA-256, no process
randomization), supports union (for merging domain views) and
false-positive-rate estimation; sized via the standard
``m = -n ln p / (ln 2)^2`` formula.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

import numpy as np


class BloomFilter:
    """Bit-array Bloom filter with ``k`` double-hashed probe positions.

    Parameters
    ----------
    n_bits:
        Size of the bit array (rounded up to a multiple of 8).
    n_hashes:
        Number of probe positions per item.
    """

    def __init__(self, n_bits: int = 1024, n_hashes: int = 4) -> None:
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        if n_hashes <= 0:
            raise ValueError(f"n_hashes must be positive, got {n_hashes}")
        self.n_bits = int(math.ceil(n_bits / 8) * 8)
        self.n_hashes = int(n_hashes)
        self.bits = np.zeros(self.n_bits, dtype=bool)
        self.n_items = 0

    @classmethod
    def for_capacity(
        cls, n_items: int, fp_rate: float = 0.01
    ) -> "BloomFilter":
        """Size a filter for *n_items* at a target false-positive rate."""
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if not 0 < fp_rate < 1:
            raise ValueError(f"fp_rate must be in (0,1), got {fp_rate}")
        m = int(math.ceil(-n_items * math.log(fp_rate) / (math.log(2) ** 2)))
        k = max(1, round(m / n_items * math.log(2)))
        return cls(n_bits=m, n_hashes=k)

    def _positions(self, item: str) -> list[int]:
        digest = hashlib.sha256(item.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd: full-period step
        return [(h1 + i * h2) % self.n_bits for i in range(self.n_hashes)]

    def add(self, item: str) -> None:
        """Insert an item."""
        for pos in self._positions(item):
            self.bits[pos] = True
        self.n_items += 1

    def update(self, items: Iterable[str]) -> None:
        """Insert many items."""
        for item in items:
            self.add(item)

    def __contains__(self, item: str) -> bool:
        # Open-coded _positions with early exit: a non-member bails on
        # its first zero bit (membership probes run on every redirect
        # decision).
        digest = hashlib.sha256(item.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        bits = self.bits
        n_bits = self.n_bits
        for i in range(self.n_hashes):
            if not bits[(h1 + i * h2) % n_bits]:
                return False
        return True

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise-OR merge (filters must share geometry)."""
        if (self.n_bits, self.n_hashes) != (other.n_bits, other.n_hashes):
            raise ValueError("cannot union filters of different geometry")
        merged = BloomFilter(self.n_bits, self.n_hashes)
        np.logical_or(self.bits, other.bits, out=merged.bits)
        merged.n_items = self.n_items + other.n_items
        return merged

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits."""
        return float(self.bits.mean())

    def estimated_fp_rate(self) -> float:
        """Current false-positive probability estimate."""
        return self.fill_ratio ** self.n_hashes

    def copy(self) -> "BloomFilter":
        dup = BloomFilter(self.n_bits, self.n_hashes)
        dup.bits = self.bits.copy()
        dup.n_items = self.n_items
        return dup

    def __repr__(self) -> str:
        return (
            f"<BloomFilter bits={self.n_bits} k={self.n_hashes} "
            f"items={self.n_items} fill={self.fill_ratio:.3f}>"
        )

"""A domain's advertised summary: objects, services, load, version."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.summaries.bloom import BloomFilter


@dataclass
class DomainSummary:
    """What a Resource Manager advertises to other domains (§3.1).

    ``SumO_k`` and ``SumS_k`` of the paper are the two Bloom filters;
    we additionally carry a mean-utilization figure so redirection can
    prefer lightly loaded domains, and a monotonically increasing
    version for gossip anti-entropy.
    """

    domain_id: str
    rm_id: str
    version: int = 0
    n_peers: int = 0
    mean_utilization: float = 0.0
    objects: BloomFilter = field(default_factory=lambda: BloomFilter(2048, 5))
    services: BloomFilter = field(default_factory=lambda: BloomFilter(2048, 5))

    def may_have_object(self, name: str) -> bool:
        """Bloom membership test (false positives possible, §4.5)."""
        return name in self.objects

    def may_have_service(self, service_id: str) -> bool:
        return service_id in self.services

    def rebuild(
        self,
        objects: Iterable[str],
        services: Iterable[str],
        n_peers: int,
        mean_utilization: float,
        geometry: Optional[tuple[int, int]] = None,
    ) -> "DomainSummary":
        """Produce the next version from fresh domain contents."""
        bits, hashes = geometry or (self.objects.n_bits, self.objects.n_hashes)
        new_obj = BloomFilter(bits, hashes)
        new_obj.update(objects)
        new_srv = BloomFilter(bits, hashes)
        new_srv.update(services)
        return DomainSummary(
            domain_id=self.domain_id,
            rm_id=self.rm_id,
            version=self.version + 1,
            n_peers=n_peers,
            mean_utilization=mean_utilization,
            objects=new_obj,
            services=new_srv,
        )

    def clone(self) -> "DomainSummary":
        """A shallow copy decoupled from the publisher's in-place
        ``mean_utilization`` refresh.  The Bloom filters are shared:
        they are immutable once :meth:`rebuild` has produced them."""
        return dataclasses.replace(self)

    def newer_than(self, other: Optional["DomainSummary"]) -> bool:
        """Anti-entropy ordering: is this summary fresher?"""
        return other is None or self.version > other.version

    def __repr__(self) -> str:
        return (
            f"<DomainSummary {self.domain_id} v{self.version} "
            f"peers={self.n_peers} util={self.mean_utilization:.2f}>"
        )

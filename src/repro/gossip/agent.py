"""Anti-entropy gossip between Resource Managers.

Each RM runs a :class:`GossipAgent`:

* every ``period`` it re-publishes its own :class:`DomainSummary` if the
  domain contents changed (version bump),
* picks ``fanout`` random RM peers and sends them a **digest** (the
  version vector of every summary it holds),
* a digest receiver replies with the summaries it holds that are newer
  than the digest claims (push on demand = pull-style anti-entropy).

The agent also keeps the RM's ``known_rms`` roster in sync: any RM seen
in a digest becomes a future gossip target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

import numpy as np

from repro import telemetry
from repro.core import protocol
from repro.core.manager import ResourceManager
from repro.net.message import Message
from repro.sim.events import Event, Interrupt
from repro.sim.rng import fallback_rng
from repro.summaries.domain_summary import DomainSummary


@dataclass
class GossipConfig:
    """Gossip tunables."""

    period: float = 5.0
    fanout: int = 2
    #: Bloom geometry for published summaries (bits, hashes).
    bloom_bits: int = 2048
    bloom_hashes: int = 5

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")


class GossipAgent:
    """Drives summary publication and anti-entropy for one RM."""

    def __init__(
        self,
        rm: ResourceManager,
        config: Optional[GossipConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.rm = rm
        self.config = config or GossipConfig()
        # Fallback: a per-agent stream from the ambient scenario seed
        # when one is installed (see repro.sim.rng), else OS entropy
        # (the overlay plumbs an explicit per-agent stream derived from
        # the run seed).
        self.rng = (
            rng if rng is not None
            else fallback_rng(f"gossip:{rm.node_id}")
        )
        #: All summaries this agent holds, by rm id (own included).
        self.summaries: Dict[str, DomainSummary] = {}
        self._last_published: Optional[tuple] = None
        self.rounds = 0

        rm.on(protocol.GOSSIP_DIGEST, self._handle_digest)
        rm.on(protocol.GOSSIP_SUMMARIES, self._handle_summaries)
        self._proc = rm.env.process(
            self._loop(), name=f"gossip:{rm.node_id}"
        )

    # -- publication -------------------------------------------------------
    def publish(self) -> DomainSummary:
        """(Re)build this domain's summary if its contents changed."""
        rm = self.rm
        objects = sorted(rm.info.all_objects())
        services = sorted(rm.info.all_services())
        mean_util = rm.info.mean_utilization(rm.env.now)
        fingerprint = (tuple(objects), tuple(services), rm.info.n_peers)
        current = self.summaries.get(rm.node_id)
        if current is not None and fingerprint == self._last_published:
            # Contents unchanged: only refresh the load figure in place
            # (load drifts constantly; §4.4 says summaries change only
            # on join/leave, so no version bump).
            current.mean_utilization = mean_util
            return current
        base = current or DomainSummary(rm.domain_id, rm.node_id)
        summary = base.rebuild(
            objects, services, rm.info.n_peers, mean_util,
            geometry=(self.config.bloom_bits, self.config.bloom_hashes),
        )
        self.summaries[rm.node_id] = summary
        self._last_published = fingerprint
        self._sync_into_rm()
        return summary

    def _sync_into_rm(self) -> None:
        """Expose held summaries to the RM's redirect logic."""
        for rm_id, summary in self.summaries.items():
            if rm_id == self.rm.node_id:
                continue
            self.rm.info.remote_summaries[rm_id] = summary
            # Overwrite, don't setdefault: a digest may have introduced
            # this RM under the "?" placeholder; the summary carries the
            # authoritative domain id and must replace it, otherwise
            # redirect targeting keeps a bogus domain roster forever.
            self.rm.known_rms[rm_id] = summary.domain_id

    # -- digests --------------------------------------------------------------
    def digest(self) -> Dict[str, int]:
        """Version vector of all held summaries."""
        return {rm_id: s.version for rm_id, s in self.summaries.items()}

    def _handle_digest(self, msg: Message) -> None:
        their: Dict[str, int] = msg.payload["digest"]
        # Learn about RMs we did not know.
        for rm_id in their:
            if rm_id != self.rm.node_id:
                self.rm.known_rms.setdefault(rm_id, "?")
        fresher = [
            s for rm_id, s in self.summaries.items()
            if s.version > their.get(rm_id, -1)
        ]
        if fresher:
            self.rm.reply(
                msg, protocol.GOSSIP_SUMMARIES,
                {"summaries": fresher},
                size=protocol.size_of(protocol.GOSSIP_SUMMARIES),
            )

    def _handle_summaries(self, msg: Message) -> None:
        now = self.rm.env.now
        for summary in msg.payload["summaries"]:
            held = self.summaries.get(summary.rm_id)
            if summary.newer_than(held):
                # Copy on receipt: the simulated fabric delivers payload
                # objects by reference, so without the copy the
                # publisher's in-place load refresh would time-travel to
                # remote RMs without a gossip round — diverging from the
                # live UDP runtime, which serializes every hop.
                summary = summary.clone()
                self.summaries[summary.rm_id] = summary
                # Stamp the receipt so redirect staleness bounds can
                # distrust load reports that stopped refreshing.
                if summary.rm_id != self.rm.node_id:
                    self.rm.info.note_summary(summary.rm_id, summary, now)
        self._sync_into_rm()

    # -- the loop ---------------------------------------------------------------
    def _loop(self) -> Generator[Event, Any, None]:
        rm = self.rm
        try:
            while True:
                yield rm.env.timeout(self.config.period)
                if not rm.active:
                    continue
                self.publish()
                targets = [
                    rid for rid in rm.known_rms if rid != rm.node_id
                ]
                if not targets:
                    continue
                k = min(self.config.fanout, len(targets))
                chosen = self.rng.choice(len(targets), size=k, replace=False)
                # One digest per round, shared across the fanout —
                # receivers only read it, and the live runtime
                # serializes per hop anyway.
                payload = {"digest": self.digest()}
                size = protocol.size_of(protocol.GOSSIP_DIGEST)
                for idx in chosen:
                    rm.send(
                        protocol.GOSSIP_DIGEST, targets[int(idx)],
                        payload, size=size,
                    )
                self.rounds += 1
                tel = telemetry.current()
                if tel.enabled:
                    tel.tracer.event(
                        "gossip.round", node=rm.node_id, fanout=k,
                        round=self.rounds,
                    )
                    tel.metrics.counter("repro_gossip_rounds_total").inc()
        except Interrupt:
            return

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    def converged_with(self, others: list["GossipAgent"]) -> bool:
        """Do all agents hold identical version vectors? (test/metric)"""
        ref = self.digest()
        return all(o.digest() == ref for o in others)

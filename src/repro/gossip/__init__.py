"""Lazy inter-domain dissemination of summaries via gossip (§4.4).

"the summaries ... have to be updated only when peers join or leave the
system. Hence, a gossiping protocol ... should suffice for lazily
propagating changes among the Resource Managers."
"""

from repro.gossip.agent import GossipAgent, GossipConfig

__all__ = ["GossipAgent", "GossipConfig"]

"""E12 (extension) — resilience to message loss.

§1 motivates "wide-area environments with unpredictable latencies" and
unreliable infrastructure; the protocol stack tolerates loss through
timeouts, silence-based liveness detection and repair — there is no
retransmission layer by design (datagram semantics).  This experiment
sweeps a per-message loss probability and reports how gracefully the
system degrades, with the task-loss watchdog (``task_loss_grace``)
doing the accounting for streams that vanish mid-chain.
"""

from __future__ import annotations


from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(seed: int, loss: float, duration: float) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(n_peers=14, n_objects=6,
                                    replication=2),
        workload=WorkloadConfig(rate=0.4),
        loss_rate=loss,
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=60.0)
    return {
        "goodput": summary.goodput,
        "failed": summary.n_failed,
        "dropped_msgs": scenario.network.stats.dropped,
        "submit_failures": scenario.workload.n_submit_failures,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    losses = [0.0, 0.05] if quick else [0.0, 0.01, 0.02, 0.05, 0.10, 0.20]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e12",
        title="Extension: graceful degradation under message loss",
        headers=["loss_rate", "goodput", "failed", "dropped_msgs",
                 "lost_queries"],
    )
    for loss in losses:
        stats = replicate(
            lambda seed: run_once(seed, loss, duration), seeds
        )
        result.add_row(
            loss,
            stats["goodput"][0], stats["failed"][0],
            stats["dropped_msgs"][0], stats["submit_failures"][0],
        )
    result.notes.append(
        "expected shape: goodput decays smoothly (no cliff, no hang) as "
        "loss grows; every lost stream is accounted as a failed task by "
        "the loss watchdog, never silently dropped"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""The experiment harness: one module per reproduced figure/claim.

Each experiment module exposes ``run(quick=False) -> ExperimentResult``;
the result carries the table the experiment regenerates (see DESIGN.md
§4 for the experiment index and EXPERIMENTS.md for recorded outcomes).
``quick=True`` shrinks durations/replications for CI and benchmarks.

Run them all from the command line::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli e1 e2 --quick
"""

from repro.experiments.base import ExperimentResult, replicate

__all__ = ["ExperimentResult", "replicate"]

#: Registry of experiment ids to module paths (populated lazily by cli).
EXPERIMENTS = {
    "f1": "repro.experiments.f1_graph_example",
    "f2": "repro.experiments.f2_walkthrough",
    "f3": "repro.experiments.f3_allocation_algorithm",
    "e1": "repro.experiments.e1_fairness",
    "e2": "repro.experiments.e2_missrate",
    "e3": "repro.experiments.e3_scheduling",
    "e4": "repro.experiments.e4_scalability",
    "e5": "repro.experiments.e5_churn",
    "e6": "repro.experiments.e6_admission",
    "e7": "repro.experiments.e7_update_period",
    "e8": "repro.experiments.e8_failover",
    "e9": "repro.experiments.e9_gossip",
    "e10": "repro.experiments.e10_ablation",
    "e11": "repro.experiments.e11_importance",
    "e12": "repro.experiments.e12_loss",
    "e13": "repro.experiments.e13_adaptive_updates",
}

"""E10 — ablations of the paper's two allocation design choices.

1. **Fairness-max selection** (§4.2/§4.3) vs a fairness-blind
   first-feasible rule, across increasing peer heterogeneity (CV of
   processing power) — heterogeneity is where uniform-ish rules break:
   fast peers should absorb proportionally more work.
2. **The Fig-3 visited-set BFS** vs exhaustive path enumeration at the
   full-system level (does the cheaper search hurt end metrics?).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(
    seed: int,
    power_cv: float,
    policy: str,
    visited: str,
    duration: float,
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        allocation_policy=policy,
        visited_policy=visited,
        population=PopulationConfig(
            n_peers=16, n_objects=8, replication=2, power_cv=power_cv
        ),
        workload=WorkloadConfig(rate=0.8, deadline_slack=2.0),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    return {
        "fairness": summary.mean_fairness,
        "goodput": summary.goodput,
        "miss_rate": summary.miss_rate,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 350.0
    cvs = [0.0, 0.8] if quick else [0.0, 0.4, 0.8, 1.2]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e10",
        title="Ablations: fairness-max selection and visited-set search",
        headers=["power_cv", "policy", "search", "fairness", "goodput",
                 "miss_rate"],
    )
    variants = [
        ("fairness", "paper"),
        ("first", "paper"),
        ("fairness", "exhaustive"),
    ]
    for cv in cvs:
        for policy, visited in variants:
            stats = replicate(
                lambda seed: run_once(seed, cv, policy, visited, duration),
                seeds,
            )
            result.add_row(
                cv, policy, visited,
                stats["fairness"][0], stats["goodput"][0],
                stats["miss_rate"][0],
            )
    result.notes.append(
        "expected shape: fairness-max holds its fairness advantage as "
        "heterogeneity grows; exhaustive search buys little over the "
        "paper BFS at full-system level (validating the cheap search)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""E11 (extension) — importance-aware admission under overload.

The paper carries ``Importance_t`` with every task (§3.3: "a metric
that represents the relative importance of the application") and lists
"multiple QoS requirements that need to be satisfied simultaneously and
traded-off" among the §1 challenges, but never specifies an admission
mechanism that uses it.  This extension experiment evaluates the
obvious one (RMConfig.importance_admission): when the domain is loaded
past a threshold, tasks less important than the running average yield
their slot.

Metric: *value goodput* — importance-weighted completed-in-time work,
the Jensen-style "overall system benefit" of the §5 related work.
"""

from __future__ import annotations

from repro.core.manager import RMConfig
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(seed: int, gate: bool, rate: float, duration: float) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(n_peers=10, n_objects=6),
        workload=WorkloadConfig(
            rate=rate, deadline_slack=1.6, importance_range=(1, 9),
        ),
        rm=RMConfig(
            importance_admission=gate,
            importance_admission_util=0.5,
        ),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    return {
        "goodput": summary.goodput,
        "value_goodput": summary.value_goodput,
        "rejected": summary.rejection_rate,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    rates = [5.0] if quick else [1.5, 3.0, 5.0]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e11",
        title="Extension: importance-aware admission under overload",
        headers=["rate/s", "gate", "goodput", "value_goodput",
                 "reject_rate"],
    )
    for rate in rates:
        for gate in (False, True):
            stats = replicate(
                lambda seed: run_once(seed, gate, rate, duration), seeds
            )
            result.add_row(
                rate, "on" if gate else "off",
                stats["goodput"][0], stats["value_goodput"][0],
                stats["rejected"][0],
            )
    result.notes.append(
        "expected shape: at deep saturation the gate trades raw goodput "
        "for (slightly) higher value goodput — important tasks keep the "
        "reserved slice; below saturation it is inert-to-neutral. The "
        "gain is modest: a reservation only helps when admission, not "
        "deadline slack, is the binding constraint."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""F1 — Figure 1: the resource graph / service graph example.

Reproduces §4.3's worked example verbatim: an 800x600 MPEG-2 512 Kbps
source, a user requesting 640x480 MPEG-4 64 Kbps, and the resource
graph of Figure 1(A).  The table lists every candidate path the Fig-3
BFS finds (they must be exactly ``{e1,e2}``, ``{e1,e3}``,
``{e1,e4,e5,e8}``), its estimated completion time and post-assignment
fairness under a configurable load profile, and which path the paper's
fairness-max rule picks — from which the service graph of Figure 1(B)
is composed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.allocation import Allocator
from repro.core.estimate import CompletionTimeEstimator
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.experiments.base import ExperimentResult
from repro.graphs.search import iter_paths
from repro.graphs.service_graph import ServiceGraph
from repro.media.fig1 import FIG1_CANDIDATE_PATHS, build_fig1_graph
from repro.monitoring.profiler import LoadReport
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.core import Environment
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask

#: Default load profile: P2 (hosting e2) is moderately busy, so the
#: fairness-max rule prefers e3 at P3 — demonstrating the §4.3 choice
#: between the two short candidates.
DEFAULT_LOADS: Dict[str, float] = {"P1": 2.0, "P2": 5.0, "P3": 1.0, "P4": 1.0}


def build_info(
    loads: Optional[Dict[str, float]] = None, power: float = 10.0
) -> tuple[DomainInfoBase, Network, Environment, object]:
    """Assemble the Fig-1 domain with a given load profile."""
    loads = dict(DEFAULT_LOADS if loads is None else loads)
    scenario = build_fig1_graph()
    env = Environment()
    net = Network(env, ConstantLatency(0.010), bandwidth=1.25e6)
    info = DomainInfoBase("d0", "rm0")
    for pid in scenario.peers:
        rec = PeerRecord(peer_id=pid, power=power, bandwidth=1.25e6)
        info.add_peer(rec)
        rec.last_report = LoadReport(
            peer_id=pid, time=0.0, power=power,
            utilization=loads.get(pid, 0.0) / power,
            load=loads.get(pid, 0.0), bw_used=0.0,
            queue_work=0.0, queue_length=0,
        )
        rec.reported_at = 0.0
    for edge in scenario.graph.edges():
        info.register_service_instance(
            edge.src, edge.dst, edge.service_id, edge.peer_id,
            edge.work, edge.out_bytes, edge_id=edge.edge_id,
        )
    return info, net, env, scenario


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate the Figure-1 example table."""
    info, net, env, scenario = build_info()
    task = ApplicationTask(
        name="movie",
        qos=QoSRequirements(deadline=60.0),
        initial_state=scenario.v_init,
        goal_state=scenario.v_sol,
        origin_peer="P4",
        submitted_at=0.0,
    )
    estimator = CompletionTimeEstimator()
    allocator = Allocator(estimator=estimator, visited_policy="paper")

    result = ExperimentResult(
        experiment_id="f1",
        title="Figure 1: resource graph example "
              "(800x600 MPEG-2@512k -> 640x480 MPEG-4@64k)",
        headers=["path", "hops", "est_time_s", "fairness", "chosen"],
    )

    # Enumerate the raw candidates exactly as the BFS sees them.
    candidates = list(
        iter_paths(info.resource_graph, scenario.v_init, scenario.v_sol,
                   visited_policy="paper")
    )
    found = [[e.edge_id for e in path] for path in candidates]
    if found != FIG1_CANDIDATE_PATHS:
        raise AssertionError(
            f"BFS candidates {found} != paper's {FIG1_CANDIDATE_PATHS}"
        )

    alloc = allocator.allocate(
        info, net, task,
        v_init=scenario.v_init, v_sol=scenario.v_sol,
        source_peer="P1", sink_peer="P4",
        in_bytes=scenario.source_object.size_bytes, now=0.0,
    )
    loads = info.load_vector(0.0)
    for path in candidates:
        est = estimator.estimate_path(
            info, net, path, 0.0, "P1", "P4",
            scenario.source_object.size_bytes,
        )
        deltas = estimator.path_load_deltas(path, task.qos.deadline)
        fairness = loads.fairness_with(deltas)
        label = "{" + ",".join(e.edge_id for e in path) + "}"
        chosen = "  <-- RM" if [e.edge_id for e in path] == alloc.edge_ids \
            else ""
        result.add_row(label, len(path), est, fairness, chosen)

    graph = ServiceGraph.from_edges(task.task_id, alloc.path, "P1", "P4")
    result.notes.append(
        "BFS candidates match the paper's {e1,e2}, {e1,e3}, {e1,e4,e5,e8}"
    )
    result.notes.append(
        "service graph (Fig 1B): "
        + " -> ".join(f"{s.service_id}@{s.peer_id}" for s in graph.steps)
    )
    result.extra["allocation"] = alloc
    result.extra["service_graph"] = graph
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""Command-line entry point: run reproduction experiments.

::

    repro-experiments --list
    repro-experiments f1 e1 e5 --quick
    repro-experiments all --quick
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Adaptive Resource Management "
            "in Peer-to-Peer Middleware' (IPPS 2005)."
        ),
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (f1-f3, e1-e10) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small durations / single replication (CI mode)",
    )
    parser.add_argument(
        "--json", metavar="DIR",
        help="also write each result as DIR/<id>.json",
    )
    parser.add_argument(
        "--csv", metavar="DIR",
        help="also write each result table as DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for exp_id, module in EXPERIMENTS.items():
            mod = importlib.import_module(module)
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:4s} {doc}")
        return 0

    wanted = (
        list(EXPERIMENTS)
        if "all" in args.experiments
        else args.experiments
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {list(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for exp_id in wanted:
        mod = importlib.import_module(EXPERIMENTS[exp_id])
        start = time.time()
        result = mod.run(quick=args.quick)
        elapsed = time.time() - start
        print(result.render())
        print(f"  ({elapsed:.1f}s wall)\n")
        if args.json or args.csv:
            import os

            from repro.reporting import result_to_csv, result_to_json

            if args.json:
                os.makedirs(args.json, exist_ok=True)
                path = os.path.join(args.json, f"{exp_id}.json")
                with open(path, "w", encoding="utf-8") as fp:
                    fp.write(result_to_json(result))
            if args.csv:
                os.makedirs(args.csv, exist_ok=True)
                path = os.path.join(args.csv, f"{exp_id}.csv")
                with open(path, "w", encoding="utf-8") as fp:
                    fp.write(result_to_csv(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

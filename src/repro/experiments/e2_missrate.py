"""E2 — deadline performance vs offered load, per allocation policy.

Reproduces the claim of §3.3: *"Our goal is to maximize the number of
applications that meet their deadlines."*  Sweeps the Poisson arrival
rate from light to saturating load and reports goodput (tasks meeting
their deadline / submitted) and the miss rate per allocation policy.
Deadlines are tight (low slack) so queueing differences show.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)

POLICIES = ["fairness", "least_loaded", "random", "first"]


def run_once(
    seed: int, policy: str, rate: float, duration: float
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        allocation_policy=policy,
        population=PopulationConfig(
            n_peers=16, n_objects=8, replication=2, power_cv=0.5
        ),
        workload=WorkloadConfig(rate=rate, deadline_slack=2.0),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    return {
        "goodput": summary.goodput,
        "miss_rate": summary.miss_rate,
        "rejected": summary.rejection_rate,
        "mean_resp": summary.mean_response,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    rates = [0.4, 1.2] if quick else [0.2, 0.5, 0.8, 1.2, 1.6]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e2",
        title="Deadline miss rate vs arrival rate per allocation policy",
        headers=["rate/s", "policy", "goodput", "miss_rate", "reject_rate",
                 "mean_resp_s"],
    )
    for rate in rates:
        for policy in POLICIES:
            stats = replicate(
                lambda seed: run_once(seed, policy, rate, duration), seeds
            )
            result.add_row(
                rate, policy,
                stats["goodput"][0], stats["miss_rate"][0],
                stats["rejected"][0], stats["mean_resp"][0],
            )
    result.notes.append(
        "expected shape: all policies meet deadlines at light load; at "
        "high load the load-aware policies (fairness, least_loaded) "
        "sustain higher goodput than random/first"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

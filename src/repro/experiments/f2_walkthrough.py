"""F2 — Figure 2: the task-assignment walkthrough.

Figure 2 shows the three stages of on-demand task execution: (A) a peer
submits a query to the Resource Manager, (B) the RM assigns the task to
peers (graph composition), (C) transcoded media streaming begins.  This
experiment drives that exact sequence on a live simulated domain and
regenerates the timeline as a table: one row per protocol event with
its simulated timestamp.
"""

from __future__ import annotations

from repro.core.info_base import PeerRecord
from repro.core.manager import ResourceManager
from repro.core.peer import Peer, PeerConfig
from repro.experiments.base import ExperimentResult
from repro.media.fig1 import build_fig1_graph
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.core import Environment
from repro.sim.trace import Tracer


def run(quick: bool = False) -> ExperimentResult:
    """Drive the Fig-2 sequence and regenerate the event timeline."""
    env = Environment()
    tracer = Tracer()
    net = Network(env, ConstantLatency(0.010), bandwidth=1.25e6,
                  tracer=tracer)
    events = []
    rm = ResourceManager(
        env, net, "rm0", "d0", tracer=tracer,
        on_task_event=lambda t, e: events.append((env.now, e, t)),
    )
    scenario = build_fig1_graph()
    peers = {}
    for pid in scenario.peers:
        peers[pid] = Peer(env, net, pid, PeerConfig(power=10.0),
                          rm_id="rm0", tracer=tracer)
        rm.admit_peer(PeerRecord(peer_id=pid, power=10.0, bandwidth=1.25e6))
    for edge in scenario.graph.edges():
        rm.info.register_service_instance(
            edge.src, edge.dst, edge.service_id, edge.peer_id,
            edge.work, edge.out_bytes, edge_id=edge.edge_id,
        )
    peers["P1"].store_object(scenario.source_object)
    rm.object_catalog[scenario.source_object.name] = scenario.source_object
    rm.info.peer("P1").objects.add(scenario.source_object.name)

    acks = []

    def client():
        reply = yield from peers["P4"].submit_task(
            "movie", scenario.v_sol, deadline=60.0
        )
        acks.append((env.now, reply.payload))

    env.process(client())
    env.run(until=60.0)

    task = next(iter(rm.tasks.values()))
    result = ExperimentResult(
        experiment_id="f2",
        title="Figure 2: task assignment walkthrough "
              "(A query -> B assignment -> C streaming)",
        headers=["t_sim_s", "stage", "event"],
    )
    result.add_row(task.submitted_at, "A", "query received by RM (task_request)")
    admitted = [t for t, e, _ in events if e == "admitted"]
    result.add_row(
        admitted[0], "B",
        "allocation decided: "
        + " -> ".join(f"{s}@{p}" for s, p in task.allocation)
        + f" (fairness {task.allocation_fairness:.3f})",
    )
    composes = tracer.of_kind("peer.compose")
    for rec in composes:
        result.add_row(
            rec.time, "B", f"graph composition message at {rec['peer']}"
        )
    submits = tracer.of_kind("cpu.submit")
    if submits:
        result.add_row(submits[0].time, "C", "streaming + transcoding begins")
    for rec in tracer.of_kind("cpu.complete"):
        result.add_row(
            rec.time, "C",
            f"transcoding step finished at {rec['peer']}",
        )
    done = tracer.of_kind("peer.task_complete")
    for rec in done:
        result.add_row(
            rec.time, "C", f"final stream delivered at {rec['peer']}"
        )
    if task.outcome is None or task.outcome.value != "met":
        raise AssertionError(f"walkthrough task did not complete: {task}")
    result.notes.append(
        f"task {task.task_id} met its deadline: response "
        f"{task.response_time:.2f}s vs deadline {task.qos.deadline:.0f}s"
    )
    result.extra["task"] = task
    result.extra["ack"] = acks[0] if acks else None
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""E4 — scalability with the number of peers.

Reproduces §6: *"Our proposed architecture scales well with respect to
the number of peers."*  The peer population grows from 8 to 128+ with
the arrival rate scaled proportionally (constant per-peer load); the
domain-size bound makes the overlay split into more domains as it
grows.  Reported: domains formed, goodput, mean response, and control
messages per peer per second (the decentralization claim: overhead per
peer should stay roughly flat while the system grows).
"""

from __future__ import annotations

from repro.core import protocol
from repro.core.manager import RMConfig
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)

#: Control-plane message kinds (excludes the data STREAM traffic).
CONTROL_KINDS = {
    protocol.LOAD_UPDATE, protocol.TASK_REQUEST, protocol.TASK_ACK,
    protocol.COMPOSE, protocol.START_STREAM, protocol.STEP_DONE,
    protocol.TASK_DONE, protocol.TASK_REDIRECT, protocol.GOSSIP_DIGEST,
    protocol.GOSSIP_SUMMARIES, protocol.RM_SYNC, protocol.JOIN_REQUEST,
}


def run_once(
    seed: int, n_peers: int, per_peer_rate: float, duration: float,
    max_peers: int,
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=n_peers,
            n_objects=max(6, n_peers // 2),
            replication=3,
        ),
        workload=WorkloadConfig(rate=per_peer_rate * n_peers),
        rm=RMConfig(max_peers=max_peers),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    by_kind = scenario.network.stats.by_kind
    control_msgs = sum(by_kind.get(k, 0) for k in CONTROL_KINDS)
    # The §1(a) centralization cost: traffic the busiest RM terminates.
    by_dst = scenario.network.stats.by_dst
    rm_ids = {rm.node_id for rm in scenario.overlay.rms()}
    max_rm_inbound = max(
        (by_dst.get(rid, 0) for rid in rm_ids), default=0
    )
    return {
        "domains": scenario.overlay.n_domains,
        "goodput": summary.goodput,
        "mean_resp": summary.mean_response,
        "ctrl_per_peer_s": control_msgs / n_peers / summary.duration,
        "max_rm_inbound_s": max_rm_inbound / summary.duration,
        "redirects": summary.n_redirected,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 120.0 if quick else 300.0
    sizes = [8, 32] if quick else [8, 16, 32, 64, 128]
    per_peer_rate = 0.03
    max_peers = 16
    seeds = seeds_for(quick, full=2)
    result = ExperimentResult(
        experiment_id="e4",
        title="Scalability with the number of peers "
              "(per-peer load held constant)",
        headers=["peers", "mode", "domains", "goodput", "mean_resp_s",
                 "ctrl_msgs/peer/s", "max_rm_inbound/s", "redirects"],
    )
    for n_peers in sizes:
        # Decentralized (the paper): bounded domains that split.
        stats = replicate(
            lambda seed: run_once(
                seed, n_peers, per_peer_rate, duration, max_peers
            ),
            seeds,
        )
        result.add_row(
            n_peers, "domains", stats["domains"][0], stats["goodput"][0],
            stats["mean_resp"][0], stats["ctrl_per_peer_s"][0],
            stats["max_rm_inbound_s"][0], stats["redirects"][0],
        )
        # Centralized strawman (§1's "inadequacy of a central manager"):
        # one RM manages every peer, no splits, no redirection.
        stats_c = replicate(
            lambda seed: run_once(
                seed, n_peers, per_peer_rate, duration,
                max_peers=10_000_000,
            ),
            seeds,
        )
        result.add_row(
            n_peers, "central", stats_c["domains"][0],
            stats_c["goodput"][0], stats_c["mean_resp"][0],
            stats_c["ctrl_per_peer_s"][0],
            stats_c["max_rm_inbound_s"][0], stats_c["redirects"][0],
        )
    result.notes.append(
        "expected shape: goodput roughly flat and ctrl msgs/peer/s "
        "bounded as peers grow (domains split; each RM only manages a "
        "bounded roster); the centralized mode concentrates every "
        "control message on one node"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

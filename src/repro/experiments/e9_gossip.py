"""E9 — gossip convergence of inter-domain summaries.

Reproduces §4.4 (inter-domain propagation): *"a gossiping protocol ...
should suffice for lazily propagating changes among the Resource
Managers."*  Domains are created empty of workload; the measured
quantity is how long (in seconds and in gossip rounds) it takes until
every RM holds every domain's summary, as the number of domains and the
gossip fanout grow.
"""

from __future__ import annotations

from repro.core.manager import RMConfig
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.gossip.agent import GossipConfig
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(
    seed: int, n_domains: int, fanout: int, period: float = 2.0
) -> dict:
    peers_per_domain = 4
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=n_domains * peers_per_domain,
            n_objects=n_domains * 2,
            replication=2,
        ),
        # Tiny trickle workload: E9 is about the control plane.
        workload=WorkloadConfig(rate=0.01),
        rm=RMConfig(max_peers=peers_per_domain),
        gossip=GossipConfig(period=period, fanout=fanout),
    )
    scenario = build_scenario(cfg)
    if scenario.overlay.n_domains < n_domains:
        # The population is sized to force exactly n_domains splits.
        pass
    agents = [
        d.gossip for d in scenario.overlay.domains.values()
        if d.gossip is not None
    ]
    total = len(agents)
    converged_at = {"t": None}

    def probe():
        while True:
            yield scenario.env.timeout(period / 2.0)
            if converged_at["t"] is not None:
                return
            if all(len(a.summaries) == total for a in agents):
                converged_at["t"] = scenario.env.now

    scenario.env.process(probe())
    scenario.env.run(until=600.0)
    t = converged_at["t"]
    return {
        "domains": total,
        "converged": 1.0 if t is not None else 0.0,
        "time_s": t if t is not None else 600.0,
        "rounds": (t / period) if t is not None else float("inf"),
    }


def run(quick: bool = False) -> ExperimentResult:
    sizes = [4, 8] if quick else [2, 4, 8, 16]
    fanouts = [1, 2] if quick else [1, 2, 4]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e9",
        title="Gossip convergence of inter-domain summaries",
        headers=["domains", "fanout", "converged", "time_s", "rounds"],
    )
    for n_domains in sizes:
        for fanout in fanouts:
            stats = replicate(
                lambda seed: run_once(seed, n_domains, fanout), seeds
            )
            result.add_row(
                n_domains, fanout,
                stats["converged"][0], stats["time_s"][0],
                stats["rounds"][0],
            )
    result.notes.append(
        "expected shape: rounds grow ~ log(domains); higher fanout "
        "converges in fewer rounds at proportionally more messages"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

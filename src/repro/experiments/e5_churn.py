"""E5 — dynamic environments: churn, with and without adaptation.

Reproduces §6: *"works effectively in heterogeneous and dynamic
environments"*, and §4.5's infrastructure-change adaptation: as peers
fail/depart, the RM repairs service graphs by re-running the allocation
from the state the data had reached.  The churn rate (mean peer session
lifetime) is swept; "no-adapt" disables repair so interrupted tasks are
simply lost — the gap between the two curves is the mechanism's value.
"""

from __future__ import annotations

from repro.core.manager import RMConfig
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.overlay.churn import ChurnConfig
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(
    seed: int, mean_lifetime: float, adapt: bool, duration: float
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=20, n_objects=8, replication=3
        ),
        workload=WorkloadConfig(rate=0.4),
        rm=RMConfig(enable_repair=adapt, enable_reassignment=adapt),
        churn=ChurnConfig(
            mean_lifetime=mean_lifetime,
            mean_offtime=15.0,
            graceful_prob=0.5,
        ),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=60.0)
    return {
        "goodput": summary.goodput,
        "failed": summary.n_failed,
        "repairs": summary.n_repairs,
        "departures": scenario.churn.departures if scenario.churn else 0,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 200.0 if quick else 500.0
    lifetimes = [90.0] if quick else [300.0, 150.0, 90.0, 45.0]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e5",
        title="Churn: goodput with and without adaptive repair",
        headers=["mean_lifetime_s", "adapt", "goodput", "failed",
                 "repairs", "departures"],
    )
    for lifetime in lifetimes:
        for adapt in (True, False):
            stats = replicate(
                lambda seed: run_once(seed, lifetime, adapt, duration),
                seeds,
            )
            result.add_row(
                lifetime, "yes" if adapt else "no",
                stats["goodput"][0], stats["failed"][0],
                stats["repairs"][0], stats["departures"][0],
            )
    result.notes.append(
        "expected shape: goodput(adapt=yes) > goodput(adapt=no), with "
        "the gap widening as lifetimes shrink (more interruptions to "
        "repair)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""E6 — admission control and inter-domain redirection.

Reproduces §4.5: *"If all peers are too loaded to provide the requested
QoS guarantees, then the task is not admitted ... Instead, the task
query is redirected to a Resource Manager of another domain. To
maximize the probability that the task will be admitted, the summaries
of the available objects and services in other domains are utilized."*

Several bounded domains under rising offered load; reported: admitted /
redirected / rejected fractions, with gossiped Bloom summaries on vs
off (without summaries the redirect falls back to an arbitrary RM).
"""

from __future__ import annotations

from repro.core.manager import RMConfig
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(
    seed: int, rate: float, gossip: bool, duration: float
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=32, n_objects=10, replication=2
        ),
        workload=WorkloadConfig(rate=rate, deadline_slack=2.0),
        rm=RMConfig(max_peers=10),
        enable_gossip=gossip,
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    n = max(summary.n_submitted, 1)
    return {
        "domains": scenario.overlay.n_domains,
        "admit_frac": summary.n_admitted / n,
        "redirect_frac": summary.n_redirected / n,
        "reject_frac": summary.n_rejected / n,
        "goodput": summary.goodput,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 350.0
    rates = [1.0] if quick else [0.5, 1.0, 2.0, 3.0]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e6",
        title="Admission control and redirection across domains",
        headers=["rate/s", "summaries", "domains", "admit", "redirect",
                 "reject", "goodput"],
    )
    for rate in rates:
        for gossip in (True, False):
            stats = replicate(
                lambda seed: run_once(seed, rate, gossip, duration), seeds
            )
            result.add_row(
                rate, "bloom" if gossip else "none",
                stats["domains"][0], stats["admit_frac"][0],
                stats["redirect_frac"][0], stats["reject_frac"][0],
                stats["goodput"][0],
            )
    result.notes.append(
        "expected shape: redirection rises with load; Bloom summaries "
        "turn would-be rejections into successful redirects (higher "
        "admit/goodput than 'none' at equal load)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

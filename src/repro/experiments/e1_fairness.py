"""E1 — load-balance fairness vs allocation policy.

Reproduces the claim of §4.2/§6: *"We propose a load balancing
algorithm based on the notion of fairness. The algorithm ensures that
the load among the peers is fairly balanced."*

One heterogeneous 16-peer domain; Poisson arrivals swept across offered
load; the paper's fairness-max selection compared against the §5
baselines (random, round-robin, greedy least-loaded, first-feasible)
that share identical search + feasibility machinery.  Reported metric:
time-weighted mean Jain fairness of the *measured* (profiler) load
distribution, plus goodput.
"""

from __future__ import annotations

from repro.core.control.placement import policy_names
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)

# The paper policy plus every built-in baseline from the placement
# registry ("fairness" is an alias of "paper" and is skipped).
POLICIES = [n for n in policy_names() if n != "fairness"]


def run_once(
    seed: int, policy: str, rate: float, duration: float, n_peers: int = 16
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        allocation_policy=policy,
        population=PopulationConfig(
            n_peers=n_peers, n_objects=8, replication=2, power_cv=0.5
        ),
        workload=WorkloadConfig(rate=rate),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    return {
        "fairness": summary.mean_fairness,
        "goodput": summary.goodput,
        "miss_rate": summary.miss_rate,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    rates = [0.3, 0.8] if quick else [0.2, 0.5, 0.8, 1.2]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e1",
        title="Fairness of the load distribution vs allocation policy",
        headers=["rate/s", "policy", "fairness", "goodput", "miss_rate"],
    )
    for rate in rates:
        for policy in POLICIES:
            stats = replicate(
                lambda seed: run_once(seed, policy, rate, duration), seeds
            )
            result.add_row(
                rate, policy,
                stats["fairness"][0], stats["goodput"][0],
                stats["miss_rate"][0],
            )
    result.notes.append(
        "expected shape: fairness-max >= round_robin/least_loaded >> "
        "random/first on the fairness column, with goodput at least as "
        "good at high load"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""F3 — Figure 3: the allocation algorithm itself.

Figure 3 gives the pseudocode of ALLOCATIONALGORITHM.  This experiment
characterizes our implementation against ground truth on random
resource graphs:

* **agreement / optimality gap** — the paper BFS marks intermediate
  vertices visited, so it can miss the globally fairest path; we
  compare its pick against exhaustive simple-path enumeration;
* **cost scaling** — expansions and candidates examined vs graph size
  (the reason the paper prunes at all).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocator
from repro.core.estimate import CompletionTimeEstimator
from repro.core.info_base import DomainInfoBase, PeerRecord
from repro.experiments.base import ExperimentResult
from repro.monitoring.profiler import LoadReport
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.core import Environment
from repro.tasks.qos import QoSRequirements
from repro.tasks.task import ApplicationTask


def random_domain(
    n_states: int,
    n_edges: int,
    n_peers: int,
    rng: np.random.Generator,
    power: float = 10.0,
) -> tuple[DomainInfoBase, Network]:
    """A random layered resource graph over a random load profile."""
    env = Environment()
    net = Network(env, ConstantLatency(0.005), bandwidth=1.25e7)
    info = DomainInfoBase("d0", "rm0")
    for i in range(n_peers):
        rec = PeerRecord(peer_id=f"p{i}", power=power, bandwidth=1.25e7)
        info.add_peer(rec)
        load = float(rng.uniform(0.0, 0.5) * power)
        rec.last_report = LoadReport(
            peer_id=rec.peer_id, time=0.0, power=power,
            utilization=load / power, load=load, bw_used=0.0,
            queue_work=0.0, queue_length=0,
        )
        rec.reported_at = 0.0
    states = [f"s{i}" for i in range(n_states)]
    # Guarantee a backbone path s0 -> s1 -> ... -> s(n-1).
    edges = [(i, i + 1) for i in range(n_states - 1)]
    while len(edges) < n_edges:
        a = int(rng.integers(n_states))
        b = int(rng.integers(n_states))
        if a != b:
            edges.append((a, b))
    for a, b in edges:
        info.register_service_instance(
            states[a], states[b],
            service_id=f"svc{a}-{b}",
            peer_id=f"p{int(rng.integers(n_peers))}",
            work=float(rng.uniform(5.0, 25.0)),
            out_bytes=float(rng.uniform(1e5, 1e6)),
        )
    return info, net


def run(quick: bool = False) -> ExperimentResult:
    """Compare paper-BFS allocation against exhaustive enumeration."""
    rng = np.random.default_rng(2005)
    sizes = [(6, 12), (8, 20), (10, 28)] if quick else [
        (6, 12), (8, 20), (10, 28), (12, 40), (16, 56),
    ]
    trials = 10 if quick else 30
    result = ExperimentResult(
        experiment_id="f3",
        title="Figure 3: allocation algorithm vs exhaustive ground truth",
        headers=[
            "states", "edges", "feasible%", "agree%", "fairness_gap",
            "examined_paper", "examined_exh",
        ],
    )
    estimator = CompletionTimeEstimator()
    for n_states, n_edges in sizes:
        paper_alloc = Allocator(estimator=estimator, visited_policy="paper")
        exh_alloc = Allocator(
            estimator=estimator, visited_policy="exhaustive"
        )
        agree = 0
        feasible = 0
        gaps = []
        ex_paper = []
        ex_exh = []
        for _trial in range(trials):
            info, net = random_domain(n_states, n_edges, 8, rng)
            task = ApplicationTask(
                name="x", qos=QoSRequirements(deadline=120.0),
                initial_state="s0", goal_state=f"s{n_states - 1}",
                origin_peer="p0", submitted_at=0.0,
            )
            kwargs = dict(
                v_init="s0", v_sol=f"s{n_states - 1}",
                source_peer="p0", sink_peer="p0",
                in_bytes=1e6, now=0.0,
            )
            try:
                r_paper = paper_alloc.allocate(info, net, task, **kwargs)
            except Exception:
                r_paper = None
            try:
                r_exh = exh_alloc.allocate(info, net, task, **kwargs)
            except Exception:
                r_exh = None
            if r_paper is None or r_exh is None:
                continue
            feasible += 1
            gaps.append(r_exh.fairness - r_paper.fairness)
            ex_paper.append(r_paper.n_examined)
            ex_exh.append(r_exh.n_examined)
            if abs(r_exh.fairness - r_paper.fairness) < 1e-12:
                agree += 1
        result.add_row(
            n_states, n_edges,
            100.0 * feasible / trials,
            100.0 * agree / max(feasible, 1),
            float(np.mean(gaps)) if gaps else 0.0,
            float(np.mean(ex_paper)) if ex_paper else 0.0,
            float(np.mean(ex_exh)) if ex_exh else 0.0,
        )
    result.notes.append(
        "fairness_gap = exhaustive_best - paper_pick (>= 0 by "
        "construction); the BFS visited-set trades a small gap for "
        "linear search cost"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

"""E3 — local scheduling policy comparison (the paper's LLS choice).

§2: *"Our scheduling algorithm is based on the Least Laxity Scheduling
(LLS) algorithm [4] that exploits the deadlines of the applications and
the actual computation and execution times on the processors to
determine an efficient schedule."*

Fixed (paper) allocation; the per-peer Local Scheduler is swept across
LLS / EDF / FIFO / SJF / VALUE under tight deadlines and rising load.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)

SCHEDULERS = ["LLS", "EDF", "FIFO", "SJF", "VALUE"]


def run_once(
    seed: int, scheduler: str, rate: float, duration: float
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=12, n_objects=8, replication=2,
            scheduling_policy=scheduler,
        ),
        workload=WorkloadConfig(rate=rate, deadline_slack=1.8),
    )
    scenario = build_scenario(cfg)
    summary = scenario.run(duration=duration, drain=40.0)
    # Per-job deadline stats straight from the processors.
    met = missed = 0
    for peer in scenario.overlay.peers.values():
        for job in peer.processor.completed_jobs:
            if job.met_deadline:
                met += 1
            else:
                missed += 1
    return {
        "goodput": summary.goodput,
        "task_miss": summary.miss_rate,
        "job_miss": missed / max(met + missed, 1),
        "mean_resp": summary.mean_response,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    rates = [1.0] if quick else [0.6, 1.0, 1.4]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e3",
        title="Local scheduling policy vs deadline performance "
              "(fixed fairness-max allocation)",
        headers=["rate/s", "scheduler", "goodput", "task_miss", "job_miss",
                 "mean_resp_s"],
    )
    for rate in rates:
        for scheduler in SCHEDULERS:
            stats = replicate(
                lambda seed: run_once(seed, scheduler, rate, duration),
                seeds,
            )
            result.add_row(
                rate, scheduler,
                stats["goodput"][0], stats["task_miss"][0],
                stats["job_miss"][0], stats["mean_resp"][0],
            )
    result.notes.append(
        "expected shape: deadline-aware policies (LLS, EDF) miss fewer "
        "deadlines than FIFO under contention; LLS ~ EDF (the paper "
        "chose LLS)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

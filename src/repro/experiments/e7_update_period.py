"""E7 — the Profiler update-period tradeoff.

Reproduces §4.4: *"Care must be taken when selecting the period for the
load updates propagation. Too frequent updates would cause high network
traffic and processing load, while too infrequent updates may not
capture the application requirements adequately."*

The update period is swept over two orders of magnitude; reported:
control-message overhead (load updates per peer per second), the mean
staleness of the RM's view at allocation time, and the resulting
goodput.  The interior optimum is the paper's point.
"""

from __future__ import annotations

from repro.core import protocol
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(seed: int, period: float, duration: float) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=16, n_objects=8, replication=2,
            update_period=period,
        ),
        workload=WorkloadConfig(rate=1.0, deadline_slack=1.8),
    )
    scenario = build_scenario(cfg)

    # Sample RM view staleness at a fixed cadence during the run.
    staleness_samples = []

    def stale_probe():
        while True:
            yield scenario.env.timeout(5.0)
            for rm in scenario.overlay.rms():
                now = scenario.env.now
                vals = [
                    rm.info.staleness(pid, now)
                    for pid in rm.info.peers
                    if rm.info.staleness(pid, now) != float("inf")
                ]
                if vals:
                    staleness_samples.append(sum(vals) / len(vals))

    scenario.env.process(stale_probe())
    summary = scenario.run(duration=duration, drain=40.0)
    updates = scenario.network.stats.by_kind.get(protocol.LOAD_UPDATE, 0)
    n_peers = cfg.population.n_peers
    return {
        "goodput": summary.goodput,
        "miss_rate": summary.miss_rate,
        "updates_per_peer_s": updates / n_peers / summary.duration,
        "mean_staleness": (
            sum(staleness_samples) / len(staleness_samples)
            if staleness_samples
            else 0.0
        ),
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    periods = [0.5, 8.0] if quick else [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e7",
        title="Profiler update period: overhead vs staleness tradeoff",
        headers=["period_s", "updates/peer/s", "mean_staleness_s",
                 "goodput", "miss_rate"],
    )
    for period in periods:
        stats = replicate(
            lambda seed: run_once(seed, period, duration), seeds
        )
        result.add_row(
            period,
            stats["updates_per_peer_s"][0],
            stats["mean_staleness"][0],
            stats["goodput"][0],
            stats["miss_rate"][0],
        )
    result.notes.append(
        "expected shape: overhead ~ 1/period; staleness ~ period/2; "
        "goodput flat at short periods, degrading once staleness makes "
        "allocation decisions blind"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

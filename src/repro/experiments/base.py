"""Shared experiment plumbing: results, tables, replication."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.common.util import fmt_table


@dataclass
class ExperimentResult:
    """One experiment's regenerated table (plus free-form notes)."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(cells))

    def table(self, floatfmt: str = ".3f") -> str:
        return fmt_table(self.headers, self.rows, floatfmt=floatfmt)

    def render(self) -> str:
        out = [f"== {self.experiment_id.upper()}: {self.title} ==",
               self.table()]
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def column(self, header: str) -> List[Any]:
        """Extract one column by header name (for tests/plots)."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def replicate(
    fn: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, tuple[float, float]]:
    """Run *fn* per seed; return per-key (mean, std) over replications.

    ``fn`` returns a flat dict of numeric results for one seed.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        result = fn(seed)
        for key, value in result.items():
            samples.setdefault(key, []).append(float(value))
    return {
        key: (float(np.mean(vals)), float(np.std(vals)))
        for key, vals in samples.items()
    }


def seeds_for(quick: bool, full: int = 3) -> List[int]:
    """Replication seeds: 1 for quick runs, *full* otherwise."""
    return [1] if quick else list(range(1, full + 1))

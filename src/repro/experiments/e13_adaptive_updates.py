"""E13 (extension) — QoS-adaptive Profiler update frequency.

§4.4: *"The application QoS requirements determine the appropriate
update frequency."*  The adaptive Profiler reports twice as often while
the peer executes deadline-bearing jobs and half as often while idle;
this experiment compares it against fixed periods chosen to bracket its
effective rate — the question is whether adaptivity buys the fresh-view
benefit of fast updates at the message cost of slow ones.
"""

from __future__ import annotations

from repro.core import protocol
from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(
    seed: int, mode: str, duration: float, rate: float = 1.2
) -> dict:
    base_period = {"fast": 1.0, "slow": 4.0, "adaptive": 2.0}[mode]
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=16, n_objects=8, replication=2,
            update_period=base_period,
        ),
        workload=WorkloadConfig(rate=rate, deadline_slack=1.8),
    )
    scenario = build_scenario(cfg)
    if mode == "adaptive":
        for peer in scenario.overlay.peers.values():
            peer.profiler.adaptive = True
    summary = scenario.run(duration=duration, drain=40.0)
    updates = scenario.network.stats.by_kind.get(protocol.LOAD_UPDATE, 0)
    return {
        "goodput": summary.goodput,
        "miss_rate": summary.miss_rate,
        "updates_per_peer_s": updates / 16 / summary.duration,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 150.0 if quick else 400.0
    modes = ["fast", "adaptive", "slow"]
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e13",
        title="Extension: QoS-adaptive Profiler update frequency",
        headers=["mode", "updates/peer/s", "goodput", "miss_rate"],
    )
    for mode in modes:
        stats = replicate(
            lambda seed: run_once(seed, mode, duration), seeds
        )
        result.add_row(
            mode,
            stats["updates_per_peer_s"][0],
            stats["goodput"][0],
            stats["miss_rate"][0],
        )
    result.notes.append(
        "expected shape: adaptive lands between fast and slow on "
        "message overhead while holding goodput within noise of fast — "
        "busy (decision-relevant) peers stay fresh, idle peers stop "
        "chattering"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())

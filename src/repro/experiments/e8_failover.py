"""E8 — Resource Manager failover via the backup RM.

Reproduces §4.1: *"When a Resource Manager disconnects, the backup
Resource Manager senses the withdrawn connection. It then takes over as
a Resource Manager, using its backup copy of the Resource Manager
information."*

The primary RM is crashed mid-run; reported: whether/when the backup
took over, queries lost during the outage window, and end-of-run
goodput — against a no-backup configuration where the domain is simply
headless after the crash.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, replicate, seeds_for
from repro.overlay.failover import FailoverConfig
from repro.workloads import (
    PopulationConfig,
    ScenarioConfig,
    WorkloadConfig,
    build_scenario,
)


def run_once(
    seed: int, backup: bool, kill_at: float, duration: float,
    sync_period: float = 3.0,
) -> dict:
    cfg = ScenarioConfig(
        seed=seed,
        population=PopulationConfig(
            n_peers=14, n_objects=6, replication=3
        ),
        workload=WorkloadConfig(rate=0.4),
        failover=FailoverConfig(
            sync_period=sync_period, dead_after_periods=2.0
        ),
        enable_backups=backup,
    )
    scenario = build_scenario(cfg)
    domain = next(iter(scenario.overlay.domains.values()))
    primary_id = domain.rm.node_id
    failover_agent = domain.failover

    def killer():
        yield scenario.env.timeout(kill_at)
        scenario.overlay.fail_peer(primary_id)

    scenario.env.process(killer())
    summary = scenario.run(duration=duration, drain=60.0)
    domain_after = next(iter(scenario.overlay.domains.values()))
    took_over = (
        failover_agent is not None and failover_agent.took_over
    )
    detection = (
        failover_agent.takeover_time - kill_at
        if took_over and failover_agent.takeover_time is not None
        else float("nan")
    )
    return {
        "goodput": summary.goodput,
        "took_over": 1.0 if took_over else 0.0,
        "detection_s": detection if took_over else -1.0,
        "lost_queries": scenario.workload.n_submit_failures,
        "rm_active": 1.0 if domain_after.rm.active
        and domain_after.rm.alive else 0.0,
    }


def run(quick: bool = False) -> ExperimentResult:
    duration = 200.0 if quick else 400.0
    kill_at = 80.0
    seeds = seeds_for(quick)
    result = ExperimentResult(
        experiment_id="e8",
        title="RM failover: backup takeover after a primary crash "
              f"(crash at t={kill_at:.0f}s)",
        headers=["backup", "took_over", "detect_s", "lost_queries",
                 "goodput", "rm_alive_at_end"],
    )
    for backup in (True, False):
        stats = replicate(
            lambda seed: run_once(seed, backup, kill_at, duration), seeds
        )
        result.add_row(
            "yes" if backup else "no",
            stats["took_over"][0],
            stats["detection_s"][0],
            stats["lost_queries"][0],
            stats["goodput"][0],
            stats["rm_active"][0],
        )
    result.notes.append(
        "expected shape: with a backup the domain recovers within a few "
        "sync periods and goodput stays high; without one, every query "
        "after the crash is lost"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
